#include "nn/neuron_activations.hpp"

namespace ndsnn::nn {

PlifActivation::PlifActivation(snn::PlifConfig config, int64_t timesteps)
    : plif_(config, timesteps),
      leak_param_(tensor::Shape{1}),
      leak_grad_(tensor::Shape{1}) {
  leak_param_.at(0) = plif_.raw_leak();
}

tensor::Tensor PlifActivation::forward(const tensor::Tensor& input, bool /*training*/) {
  // Optimizer writes into leak_param_; sync before using it.
  plif_.raw_leak() = leak_param_.at(0);
  return plif_.forward(input);
}

tensor::Tensor PlifActivation::backward(const tensor::Tensor& grad_output) {
  plif_.raw_leak_grad() = 0.0F;
  tensor::Tensor gin = plif_.backward(grad_output);
  leak_grad_.at(0) += plif_.raw_leak_grad();
  return gin;
}

std::vector<ParamRef> PlifActivation::params() {
  return {{"leak", &leak_param_, &leak_grad_, /*prunable=*/false}};
}

std::string PlifActivation::name() const {
  return "PLIF(alpha=" + std::to_string(plif_.alpha()) +
         ", T=" + std::to_string(plif_.timesteps()) + ")";
}

void PlifActivation::reset_state() { plif_.reset_state(); }

tensor::Tensor AlifActivation::forward(const tensor::Tensor& input, bool /*training*/) {
  return alif_.forward(input);
}

tensor::Tensor AlifActivation::backward(const tensor::Tensor& grad_output) {
  return alif_.backward(grad_output);
}

std::string AlifActivation::name() const {
  return "ALIF(beta=" + std::to_string(alif_.config().beta) +
         ", T=" + std::to_string(alif_.timesteps()) + ")";
}

}  // namespace ndsnn::nn
