// Spatial pooling layers (non-overlapping windows).
#pragma once

#include <vector>

#include "nn/layer.hpp"

namespace ndsnn::nn {

/// Average pooling with kernel == stride == k. Input [M, C, H, W] with H
/// and W divisible by k.
class AvgPool2d final : public Layer {
 public:
  explicit AvgPool2d(int64_t k);

  [[nodiscard]] tensor::Tensor forward(const tensor::Tensor& input, bool training) override;
  [[nodiscard]] tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override;
  void reset_state() override;

  [[nodiscard]] int64_t k() const { return k_; }

 private:
  int64_t k_;
  tensor::Shape saved_in_shape_;
  bool has_saved_ = false;
};

/// Max pooling with kernel == stride == k; remembers argmax for backward.
class MaxPool2d final : public Layer {
 public:
  explicit MaxPool2d(int64_t k);

  [[nodiscard]] tensor::Tensor forward(const tensor::Tensor& input, bool training) override;
  [[nodiscard]] tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override;
  void reset_state() override;

  [[nodiscard]] int64_t k() const { return k_; }

 private:
  int64_t k_;
  tensor::Shape saved_in_shape_;
  std::vector<int64_t> argmax_;  // flat input index per output element
  bool has_saved_ = false;
};

/// Global average pooling: [M, C, H, W] -> [M, C].
class GlobalAvgPool final : public Layer {
 public:
  [[nodiscard]] tensor::Tensor forward(const tensor::Tensor& input, bool training) override;
  [[nodiscard]] tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return "GlobalAvgPool"; }
  void reset_state() override;

 private:
  tensor::Shape saved_in_shape_;
  bool has_saved_ = false;
};

}  // namespace ndsnn::nn
