#include "nn/residual.hpp"

#include "tensor/ops.hpp"

namespace ndsnn::nn {

ResidualBlock::ResidualBlock(int64_t in_channels, int64_t out_channels, int64_t stride,
                             const snn::LifConfig& lif, int64_t timesteps,
                             tensor::Rng& rng) {
  conv1_ = std::make_unique<Conv2d>(in_channels, out_channels, 3, stride, 1, rng);
  bn1_ = std::make_unique<BatchNorm2d>(out_channels);
  lif1_ = std::make_unique<LifActivation>(lif, timesteps);
  conv2_ = std::make_unique<Conv2d>(out_channels, out_channels, 3, 1, 1, rng);
  bn2_ = std::make_unique<BatchNorm2d>(out_channels);
  if (stride != 1 || in_channels != out_channels) {
    shortcut_conv_ = std::make_unique<Conv2d>(in_channels, out_channels, 1, stride, 0, rng);
    shortcut_bn_ = std::make_unique<BatchNorm2d>(out_channels);
  }
  lif_out_ = std::make_unique<LifActivation>(lif, timesteps);
}

tensor::Tensor ResidualBlock::forward(const tensor::Tensor& input, bool training) {
  tensor::Tensor main = conv1_->forward(input, training);
  main = bn1_->forward(main, training);
  main = lif1_->forward(main, training);
  main = conv2_->forward(main, training);
  main = bn2_->forward(main, training);

  tensor::Tensor shortcut = input;
  if (shortcut_conv_) {
    shortcut = shortcut_conv_->forward(input, training);
    shortcut = shortcut_bn_->forward(shortcut, training);
  }
  tensor::add_(main, shortcut);
  return lif_out_->forward(main, training);
}

tensor::Tensor ResidualBlock::backward(const tensor::Tensor& grad_output) {
  const tensor::Tensor gsum = lif_out_->backward(grad_output);

  // Main path.
  tensor::Tensor g = bn2_->backward(gsum);
  g = conv2_->backward(g);
  g = lif1_->backward(g);
  g = bn1_->backward(g);
  tensor::Tensor gin = conv1_->backward(g);

  // Shortcut path.
  if (shortcut_conv_) {
    tensor::Tensor gs = shortcut_bn_->backward(gsum);
    gs = shortcut_conv_->backward(gs);
    tensor::add_(gin, gs);
  } else {
    tensor::add_(gin, gsum);
  }
  return gin;
}

std::vector<ParamRef> ResidualBlock::params() {
  std::vector<ParamRef> all;
  auto append = [&all](const char* prefix, Layer& layer) {
    for (auto& p : layer.params()) {
      p.name = std::string(prefix) + "." + p.name;
      all.push_back(p);
    }
  };
  append("conv1", *conv1_);
  append("bn1", *bn1_);
  append("conv2", *conv2_);
  append("bn2", *bn2_);
  if (shortcut_conv_) {
    append("shortcut_conv", *shortcut_conv_);
    append("shortcut_bn", *shortcut_bn_);
  }
  return all;
}

std::string ResidualBlock::name() const {
  return "ResidualBlock(" + std::to_string(conv1_->in_channels()) + "->" +
         std::to_string(conv1_->out_channels()) + ")";
}

void ResidualBlock::reset_state() {
  conv1_->reset_state();
  bn1_->reset_state();
  lif1_->reset_state();
  conv2_->reset_state();
  bn2_->reset_state();
  if (shortcut_conv_) {
    shortcut_conv_->reset_state();
    shortcut_bn_->reset_state();
  }
  lif_out_->reset_state();
}

double ResidualBlock::last_spike_rate() const {
  return 0.5 * (lif1_->last_spike_rate() + lif_out_->last_spike_rate());
}

}  // namespace ndsnn::nn
