#include "nn/network.hpp"

#include <stdexcept>

namespace ndsnn::nn {

SpikingNetwork::SpikingNetwork(std::unique_ptr<Sequential> body, int64_t timesteps,
                               std::unique_ptr<snn::Encoder> encoder)
    : body_(std::move(body)), timesteps_(timesteps), encoder_(std::move(encoder)) {
  if (!body_) throw std::invalid_argument("SpikingNetwork: null body");
  if (timesteps_ < 1) throw std::invalid_argument("SpikingNetwork: timesteps must be >= 1");
  if (!encoder_) encoder_ = std::make_unique<snn::DirectEncoder>();
}

StepResult SpikingNetwork::train_step(const tensor::Tensor& batch,
                                      const std::vector<int64_t>& labels) {
  body_->reset_state();
  const tensor::Tensor encoded = encoder_->encode(batch, timesteps_);
  const tensor::Tensor step_logits = body_->forward(encoded, /*training=*/true);
  const tensor::Tensor mean_logits = mean_over_time(step_logits, timesteps_);
  const LossResult lr = loss_.compute(mean_logits, labels);

  const tensor::Tensor grad_steps = broadcast_over_time(lr.grad_logits, timesteps_);
  (void)body_->backward(grad_steps);  // input grads unused (leaf)

  StepResult r;
  r.loss = lr.loss;
  r.correct = lr.correct;
  r.batch = batch.dim(0);
  r.spike_rate = std::max(0.0, body_->last_spike_rate());
  return r;
}

StepResult SpikingNetwork::eval_step(const tensor::Tensor& batch,
                                     const std::vector<int64_t>& labels) {
  const tensor::Tensor mean_logits = predict(batch);
  const LossResult lr = loss_.compute(mean_logits, labels);
  StepResult r;
  r.loss = lr.loss;
  r.correct = lr.correct;
  r.batch = batch.dim(0);
  r.spike_rate = std::max(0.0, body_->last_spike_rate());
  return r;
}

tensor::Tensor SpikingNetwork::predict(const tensor::Tensor& batch) {
  body_->reset_state();
  const tensor::Tensor encoded = encoder_->encode(batch, timesteps_);
  const tensor::Tensor step_logits = body_->forward(encoded, /*training=*/false);
  return mean_over_time(step_logits, timesteps_);
}

int64_t SpikingNetwork::prunable_weight_count() {
  int64_t n = 0;
  for (const auto& p : body_->params()) {
    if (p.prunable) n += p.value->numel();
  }
  return n;
}

}  // namespace ndsnn::nn
