#include "nn/sequential.hpp"

#include <stdexcept>

namespace ndsnn::nn {

Sequential& Sequential::add(LayerPtr layer) {
  if (!layer) throw std::invalid_argument("Sequential::add: null layer");
  layers_.push_back(std::move(layer));
  return *this;
}

tensor::Tensor Sequential::forward(const tensor::Tensor& input, bool training) {
  tensor::Tensor x = input;
  for (auto& layer : layers_) x = layer->forward(x, training);
  return x;
}

tensor::Tensor Sequential::backward(const tensor::Tensor& grad_output) {
  tensor::Tensor g = grad_output;
  for (std::size_t i = layers_.size(); i-- > 0;) g = layers_[i]->backward(g);
  return g;
}

std::vector<ParamRef> Sequential::params() {
  std::vector<ParamRef> all;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    for (auto& p : layers_[i]->params()) {
      p.name = "layer" + std::to_string(i) + "." + p.name;
      all.push_back(p);
    }
  }
  return all;
}

std::string Sequential::name() const {
  return "Sequential(" + std::to_string(layers_.size()) + " layers)";
}

void Sequential::reset_state() {
  for (auto& layer : layers_) layer->reset_state();
}

double Sequential::last_spike_rate() const {
  std::vector<double> rates;
  collect_spike_rates(rates);
  if (rates.empty()) return -1.0;
  double acc = 0.0;
  for (const double r : rates) acc += r;
  return acc / static_cast<double>(rates.size());
}

void Sequential::collect_spike_rates(std::vector<double>& rates) const {
  for (const auto& layer : layers_) {
    if (const auto* seq = dynamic_cast<const Sequential*>(layer.get())) {
      seq->collect_spike_rates(rates);
    } else if (layer->last_spike_rate() >= 0.0) {
      rates.push_back(layer->last_spike_rate());
    }
  }
}

}  // namespace ndsnn::nn
