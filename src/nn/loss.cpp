#include "nn/loss.hpp"

#include <cmath>
#include <stdexcept>

#include "tensor/ops.hpp"

namespace ndsnn::nn {

LossResult CrossEntropyLoss::compute(const tensor::Tensor& logits,
                                     const std::vector<int64_t>& labels) const {
  if (logits.rank() != 2) {
    throw std::invalid_argument("CrossEntropyLoss: logits must be [N, C], got " +
                                logits.shape().str());
  }
  const int64_t n = logits.dim(0), c = logits.dim(1);
  if (static_cast<int64_t>(labels.size()) != n) {
    throw std::invalid_argument("CrossEntropyLoss: label count mismatch");
  }
  for (const int64_t y : labels) {
    if (y < 0 || y >= c) throw std::invalid_argument("CrossEntropyLoss: label out of range");
  }

  LossResult result;
  result.grad_logits = tensor::softmax_rows(logits);
  double loss_acc = 0.0;
  const float inv_n = 1.0F / static_cast<float>(n);
  for (int64_t r = 0; r < n; ++r) {
    const int64_t y = labels[static_cast<std::size_t>(r)];
    const float p = result.grad_logits.at(r, y);
    loss_acc += -std::log(std::max(p, 1e-12F));
    // grad = (softmax - onehot) / N
    result.grad_logits.at(r, y) -= 1.0F;
    int64_t best = 0;
    float bestv = logits.at(r, 0);
    for (int64_t cc = 1; cc < c; ++cc) {
      if (logits.at(r, cc) > bestv) {
        bestv = logits.at(r, cc);
        best = cc;
      }
    }
    if (best == y) ++result.correct;
  }
  tensor::scale_(result.grad_logits, inv_n);
  result.loss = loss_acc / static_cast<double>(n);
  return result;
}

tensor::Tensor mean_over_time(const tensor::Tensor& step_logits, int64_t timesteps) {
  if (step_logits.rank() != 2 || step_logits.dim(0) % timesteps != 0) {
    throw std::invalid_argument("mean_over_time: bad shape " + step_logits.shape().str() +
                                " for T=" + std::to_string(timesteps));
  }
  const int64_t n = step_logits.dim(0) / timesteps, c = step_logits.dim(1);
  tensor::Tensor mean(tensor::Shape{n, c});
  const float inv_t = 1.0F / static_cast<float>(timesteps);
  for (int64_t t = 0; t < timesteps; ++t) {
    const float* src = step_logits.data() + t * n * c;
    float* dst = mean.data();
    for (int64_t i = 0; i < n * c; ++i) dst[i] += src[i] * inv_t;
  }
  return mean;
}

tensor::Tensor broadcast_over_time(const tensor::Tensor& grad_mean, int64_t timesteps) {
  if (grad_mean.rank() != 2) {
    throw std::invalid_argument("broadcast_over_time: grad must be [N, C]");
  }
  const int64_t n = grad_mean.dim(0), c = grad_mean.dim(1);
  tensor::Tensor out(tensor::Shape{timesteps * n, c});
  const float inv_t = 1.0F / static_cast<float>(timesteps);
  for (int64_t t = 0; t < timesteps; ++t) {
    float* dst = out.data() + t * n * c;
    const float* src = grad_mean.data();
    for (int64_t i = 0; i < n * c; ++i) dst[i] = src[i] * inv_t;
  }
  return out;
}

}  // namespace ndsnn::nn
