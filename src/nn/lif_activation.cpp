#include "nn/lif_activation.hpp"

namespace ndsnn::nn {

tensor::Tensor LifActivation::forward(const tensor::Tensor& input, bool /*training*/) {
  return lif_.forward(input);
}

tensor::Tensor LifActivation::backward(const tensor::Tensor& grad_output) {
  return lif_.backward(grad_output);
}

std::string LifActivation::name() const {
  return std::string("LIF(") + snn::surrogate_name(lif_.config().surrogate) +
         ", T=" + std::to_string(lif_.timesteps()) + ")";
}

}  // namespace ndsnn::nn
