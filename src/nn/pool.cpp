#include "nn/pool.hpp"

#include <limits>
#include <stdexcept>

namespace ndsnn::nn {

namespace {
void check_poolable(const tensor::Tensor& input, int64_t k, const char* who) {
  if (input.rank() != 4) {
    throw std::invalid_argument(std::string(who) + ": expected rank-4 input, got " +
                                input.shape().str());
  }
  if (input.dim(2) % k != 0 || input.dim(3) % k != 0) {
    throw std::invalid_argument(std::string(who) + ": H/W " + input.shape().str() +
                                " not divisible by k=" + std::to_string(k));
  }
}
}  // namespace

AvgPool2d::AvgPool2d(int64_t k) : k_(k) {
  if (k < 1) throw std::invalid_argument("AvgPool2d: k must be >= 1");
}

tensor::Tensor AvgPool2d::forward(const tensor::Tensor& input, bool /*training*/) {
  check_poolable(input, k_, "AvgPool2d");
  const int64_t m = input.dim(0), c = input.dim(1), h = input.dim(2), w = input.dim(3);
  const int64_t oh = h / k_, ow = w / k_;
  saved_in_shape_ = input.shape();
  has_saved_ = true;
  tensor::Tensor out(tensor::Shape{m, c, oh, ow});
  const float inv = 1.0F / static_cast<float>(k_ * k_);
  const float* src = input.data();
  float* dst = out.data();
  for (int64_t mc = 0; mc < m * c; ++mc) {
    const float* plane = src + mc * h * w;
    float* oplane = dst + mc * oh * ow;
    for (int64_t oy = 0; oy < oh; ++oy) {
      for (int64_t ox = 0; ox < ow; ++ox) {
        float acc = 0.0F;
        for (int64_t dy = 0; dy < k_; ++dy) {
          for (int64_t dx = 0; dx < k_; ++dx) {
            acc += plane[(oy * k_ + dy) * w + (ox * k_ + dx)];
          }
        }
        oplane[oy * ow + ox] = acc * inv;
      }
    }
  }
  return out;
}

tensor::Tensor AvgPool2d::backward(const tensor::Tensor& grad_output) {
  if (!has_saved_) throw std::logic_error("AvgPool2d::backward before forward");
  const int64_t m = saved_in_shape_.dim(0), c = saved_in_shape_.dim(1);
  const int64_t h = saved_in_shape_.dim(2), w = saved_in_shape_.dim(3);
  const int64_t oh = h / k_, ow = w / k_;
  tensor::Tensor gin(saved_in_shape_);
  const float inv = 1.0F / static_cast<float>(k_ * k_);
  const float* src = grad_output.data();
  float* dst = gin.data();
  for (int64_t mc = 0; mc < m * c; ++mc) {
    const float* oplane = src + mc * oh * ow;
    float* plane = dst + mc * h * w;
    for (int64_t oy = 0; oy < oh; ++oy) {
      for (int64_t ox = 0; ox < ow; ++ox) {
        const float g = oplane[oy * ow + ox] * inv;
        for (int64_t dy = 0; dy < k_; ++dy) {
          for (int64_t dx = 0; dx < k_; ++dx) {
            plane[(oy * k_ + dy) * w + (ox * k_ + dx)] = g;
          }
        }
      }
    }
  }
  return gin;
}

std::string AvgPool2d::name() const { return "AvgPool2d(k=" + std::to_string(k_) + ")"; }

void AvgPool2d::reset_state() { has_saved_ = false; }

MaxPool2d::MaxPool2d(int64_t k) : k_(k) {
  if (k < 1) throw std::invalid_argument("MaxPool2d: k must be >= 1");
}

tensor::Tensor MaxPool2d::forward(const tensor::Tensor& input, bool /*training*/) {
  check_poolable(input, k_, "MaxPool2d");
  const int64_t m = input.dim(0), c = input.dim(1), h = input.dim(2), w = input.dim(3);
  const int64_t oh = h / k_, ow = w / k_;
  saved_in_shape_ = input.shape();
  has_saved_ = true;
  tensor::Tensor out(tensor::Shape{m, c, oh, ow});
  argmax_.assign(static_cast<std::size_t>(out.numel()), 0);
  const float* src = input.data();
  float* dst = out.data();
  for (int64_t mc = 0; mc < m * c; ++mc) {
    const float* plane = src + mc * h * w;
    float* oplane = dst + mc * oh * ow;
    int64_t* aplane = argmax_.data() + mc * oh * ow;
    for (int64_t oy = 0; oy < oh; ++oy) {
      for (int64_t ox = 0; ox < ow; ++ox) {
        float best = -std::numeric_limits<float>::infinity();
        int64_t besti = 0;
        for (int64_t dy = 0; dy < k_; ++dy) {
          for (int64_t dx = 0; dx < k_; ++dx) {
            const int64_t idx = (oy * k_ + dy) * w + (ox * k_ + dx);
            if (plane[idx] > best) {
              best = plane[idx];
              besti = idx;
            }
          }
        }
        oplane[oy * ow + ox] = best;
        aplane[oy * ow + ox] = mc * h * w + besti;
      }
    }
  }
  return out;
}

tensor::Tensor MaxPool2d::backward(const tensor::Tensor& grad_output) {
  if (!has_saved_) throw std::logic_error("MaxPool2d::backward before forward");
  tensor::Tensor gin(saved_in_shape_);
  const float* src = grad_output.data();
  float* dst = gin.data();
  const int64_t n = grad_output.numel();
  for (int64_t i = 0; i < n; ++i) {
    dst[argmax_[static_cast<std::size_t>(i)]] += src[i];
  }
  return gin;
}

std::string MaxPool2d::name() const { return "MaxPool2d(k=" + std::to_string(k_) + ")"; }

void MaxPool2d::reset_state() {
  argmax_.clear();
  has_saved_ = false;
}

tensor::Tensor GlobalAvgPool::forward(const tensor::Tensor& input, bool /*training*/) {
  if (input.rank() != 4) {
    throw std::invalid_argument("GlobalAvgPool: expected rank-4, got " + input.shape().str());
  }
  const int64_t m = input.dim(0), c = input.dim(1), plane = input.dim(2) * input.dim(3);
  saved_in_shape_ = input.shape();
  has_saved_ = true;
  tensor::Tensor out(tensor::Shape{m, c});
  const float inv = 1.0F / static_cast<float>(plane);
  const float* src = input.data();
  for (int64_t mc = 0; mc < m * c; ++mc) {
    double acc = 0.0;
    const float* p = src + mc * plane;
    for (int64_t i = 0; i < plane; ++i) acc += p[i];
    out.at(mc) = static_cast<float>(acc) * inv;
  }
  return out;
}

tensor::Tensor GlobalAvgPool::backward(const tensor::Tensor& grad_output) {
  if (!has_saved_) throw std::logic_error("GlobalAvgPool::backward before forward");
  const int64_t plane = saved_in_shape_.dim(2) * saved_in_shape_.dim(3);
  tensor::Tensor gin(saved_in_shape_);
  const float inv = 1.0F / static_cast<float>(plane);
  const float* src = grad_output.data();
  float* dst = gin.data();
  const int64_t mc_total = saved_in_shape_.dim(0) * saved_in_shape_.dim(1);
  for (int64_t mc = 0; mc < mc_total; ++mc) {
    const float g = src[mc] * inv;
    float* p = dst + mc * plane;
    for (int64_t i = 0; i < plane; ++i) p[i] = g;
  }
  return gin;
}

void GlobalAvgPool::reset_state() { has_saved_ = false; }

}  // namespace ndsnn::nn
