// SpikingNetwork: end-to-end SNN = encoder + body + rate readout.
//
// Drives one training/eval step: encode a static batch into T timesteps,
// run the body (time-major), average per-step logits, compute the loss,
// and run full BPTT back through the body.
#pragma once

#include <memory>
#include <vector>

#include "nn/loss.hpp"
#include "nn/sequential.hpp"
#include "snn/encoder.hpp"

namespace ndsnn::nn {

/// Result of one forward(+backward) step.
struct StepResult {
  double loss = 0.0;
  int64_t correct = 0;
  int64_t batch = 0;
  double spike_rate = 0.0;  ///< mean firing fraction over spiking layers
};

class SpikingNetwork {
 public:
  /// Takes ownership of the body; encoder defaults to DirectEncoder.
  SpikingNetwork(std::unique_ptr<Sequential> body, int64_t timesteps,
                 std::unique_ptr<snn::Encoder> encoder = nullptr);

  /// Forward + loss + backward (BPTT); parameter grads are accumulated
  /// (call zero_grads first). Labels indexed per sample.
  [[nodiscard]] StepResult train_step(const tensor::Tensor& batch,
                                      const std::vector<int64_t>& labels);

  /// Forward only; returns loss/accuracy stats.
  [[nodiscard]] StepResult eval_step(const tensor::Tensor& batch,
                                     const std::vector<int64_t>& labels);

  /// Forward only; returns mean logits [N, classes].
  [[nodiscard]] tensor::Tensor predict(const tensor::Tensor& batch);

  [[nodiscard]] std::vector<ParamRef> params() { return body_->params(); }
  [[nodiscard]] Sequential& body() { return *body_; }
  [[nodiscard]] const Sequential& body() const { return *body_; }
  [[nodiscard]] const snn::Encoder& encoder() const { return *encoder_; }
  [[nodiscard]] int64_t timesteps() const { return timesteps_; }

  /// Total number of prunable weight elements.
  [[nodiscard]] int64_t prunable_weight_count();

 private:
  std::unique_ptr<Sequential> body_;
  int64_t timesteps_;
  std::unique_ptr<snn::Encoder> encoder_;
  CrossEntropyLoss loss_;
};

}  // namespace ndsnn::nn
