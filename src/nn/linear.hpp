// Fully connected layer y = x Wᵀ + b with manual backprop.
#pragma once

#include "nn/layer.hpp"
#include "tensor/random.hpp"

namespace ndsnn::nn {

/// Linear layer over time-flattened rows: input [M, in], output [M, out]
/// where M = T*N. The weight matrix is `prunable`.
class Linear final : public Layer {
 public:
  /// Kaiming-initialized weights; zero bias. `bias` can be disabled.
  Linear(int64_t in_features, int64_t out_features, tensor::Rng& rng, bool bias = true);

  [[nodiscard]] tensor::Tensor forward(const tensor::Tensor& input, bool training) override;
  [[nodiscard]] tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  [[nodiscard]] std::vector<ParamRef> params() override;
  [[nodiscard]] std::string name() const override;
  void reset_state() override;
  [[nodiscard]] std::optional<MaskedLayerView> masked_view() const override;

  [[nodiscard]] int64_t in_features() const { return in_features_; }
  [[nodiscard]] int64_t out_features() const { return out_features_; }
  [[nodiscard]] bool has_bias() const { return has_bias_; }
  [[nodiscard]] tensor::Tensor& weight() { return weight_; }
  [[nodiscard]] const tensor::Tensor& weight() const { return weight_; }
  [[nodiscard]] const tensor::Tensor& bias() const { return bias_; }

 private:
  int64_t in_features_;
  int64_t out_features_;
  bool has_bias_;
  tensor::Tensor weight_;       // [out, in]
  tensor::Tensor weight_grad_;  // [out, in]
  tensor::Tensor bias_;         // [out]
  tensor::Tensor bias_grad_;    // [out]
  tensor::Tensor saved_input_;  // [M, in]
  bool has_saved_ = false;
};

}  // namespace ndsnn::nn
