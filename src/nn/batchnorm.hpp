// Batch normalization over channels of time-flattened activations.
//
// SNN practice (tdBN, Zheng et al. 2021) normalizes jointly over the time
// and batch dimensions; since activations here are [T*N, C, H, W], plain
// per-channel BN over dim 0,2,3 implements exactly that.
#pragma once

#include "nn/layer.hpp"

namespace ndsnn::nn {

/// BatchNorm2d with affine parameters and running statistics.
/// gamma/beta are trainable but never pruned.
class BatchNorm2d final : public Layer {
 public:
  explicit BatchNorm2d(int64_t channels, float eps = 1e-5F, float momentum = 0.1F);

  [[nodiscard]] tensor::Tensor forward(const tensor::Tensor& input, bool training) override;
  [[nodiscard]] tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  [[nodiscard]] std::vector<ParamRef> params() override;
  [[nodiscard]] std::string name() const override;
  void reset_state() override;

  [[nodiscard]] int64_t channels() const { return channels_; }
  [[nodiscard]] float eps() const { return eps_; }
  [[nodiscard]] const tensor::Tensor& gamma() const { return gamma_; }
  [[nodiscard]] const tensor::Tensor& beta() const { return beta_; }
  [[nodiscard]] const tensor::Tensor& running_mean() const { return running_mean_; }
  [[nodiscard]] const tensor::Tensor& running_var() const { return running_var_; }

 private:
  int64_t channels_;
  float eps_;
  float momentum_;
  tensor::Tensor gamma_, gamma_grad_;
  tensor::Tensor beta_, beta_grad_;
  tensor::Tensor running_mean_, running_var_;
  // Saved for backward:
  tensor::Tensor saved_xhat_;       // normalized input
  std::vector<float> saved_inv_std_;
  tensor::Shape saved_in_shape_;
  bool has_saved_ = false;
};

}  // namespace ndsnn::nn
