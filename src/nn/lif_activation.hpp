// Adapter exposing snn::LifLayer through the nn::Layer interface.
#pragma once

#include "nn/layer.hpp"
#include "snn/lif.hpp"

namespace ndsnn::nn {

/// Spiking nonlinearity: LIF membrane dynamics + Heaviside firing with
/// surrogate-gradient BPTT. Reports its firing rate for the cost model.
class LifActivation final : public Layer {
 public:
  LifActivation(snn::LifConfig config, int64_t timesteps)
      : lif_(config, timesteps) {}

  [[nodiscard]] tensor::Tensor forward(const tensor::Tensor& input, bool training) override;
  [[nodiscard]] tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override;
  void reset_state() override { lif_.reset_state(); }
  [[nodiscard]] double last_spike_rate() const override { return lif_.last_spike_rate(); }

  [[nodiscard]] const snn::LifLayer& lif() const { return lif_; }

 private:
  snn::LifLayer lif_;
};

}  // namespace ndsnn::nn
