// nn::Layer adapters for the PLIF and ALIF neuron variants, mirroring
// LifActivation. PlifActivation exposes its trainable leak as a
// (non-prunable) parameter so it trains with the rest of the network.
#pragma once

#include "nn/layer.hpp"
#include "snn/alif.hpp"
#include "snn/plif.hpp"

namespace ndsnn::nn {

/// Parametric-LIF spiking nonlinearity with a trainable membrane leak.
class PlifActivation final : public Layer {
 public:
  PlifActivation(snn::PlifConfig config, int64_t timesteps);

  [[nodiscard]] tensor::Tensor forward(const tensor::Tensor& input, bool training) override;
  [[nodiscard]] tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  [[nodiscard]] std::vector<ParamRef> params() override;
  [[nodiscard]] std::string name() const override;
  void reset_state() override;
  [[nodiscard]] double last_spike_rate() const override { return plif_.last_spike_rate(); }

  [[nodiscard]] float alpha() const { return plif_.alpha(); }
  [[nodiscard]] const snn::PlifLayer& plif() const { return plif_; }

 private:
  snn::PlifLayer plif_;
  // Scalar leak parameter exposed through the Tensor-based ParamRef
  // interface; synced with the PlifLayer around each forward/backward.
  tensor::Tensor leak_param_;
  tensor::Tensor leak_grad_;
};

/// Adaptive-threshold LIF spiking nonlinearity.
class AlifActivation final : public Layer {
 public:
  AlifActivation(snn::AlifConfig config, int64_t timesteps) : alif_(config, timesteps) {}

  [[nodiscard]] tensor::Tensor forward(const tensor::Tensor& input, bool training) override;
  [[nodiscard]] tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override;
  void reset_state() override { alif_.reset_state(); }
  [[nodiscard]] double last_spike_rate() const override { return alif_.last_spike_rate(); }

  [[nodiscard]] const snn::AlifLayer& alif() const { return alif_; }

 private:
  snn::AlifLayer alif_;
};

}  // namespace ndsnn::nn
