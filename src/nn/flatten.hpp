// Flatten: collapse [M, C, H, W] (or any rank >= 2) into [M, prod(rest)].
#pragma once

#include "nn/layer.hpp"

namespace ndsnn::nn {

class Flatten final : public Layer {
 public:
  [[nodiscard]] tensor::Tensor forward(const tensor::Tensor& input, bool training) override;
  [[nodiscard]] tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return "Flatten"; }
  void reset_state() override;

 private:
  tensor::Shape saved_in_shape_;
  bool has_saved_ = false;
};

}  // namespace ndsnn::nn
