// Model checkpointing: save/load every parameter tensor of a network,
// optionally tagged with the zoo architecture that produced it.
//
// Format: magic "NDCK", u32 version, then
//   v1: u64 param count, per parameter a length-prefixed name and the
//       tensor in the tensor/serialize format (legacy, params only);
//   v2: a CheckpointMeta block (zoo arch name + the ModelSpec scalars
//       needed to rebuild it) before the v1 parameter section;
//   v3: v2 plus a quantisation record between the meta block and the
//       parameters — per prunable weight layer, the deployed value
//       precision and its per-row scales/zero-points, so a served model
//       reproduces the exact quantised plane the checkpoint was
//       validated at (runtime::CompiledNetwork::from_checkpoint honors
//       it under WeightPrecision::kAuto).
// Loading validates names and shapes against the live network, so a
// checkpoint can only be restored into the architecture that wrote it.
// Every older version keeps loading: v1/v2 readers skip nothing they
// don't know, and the v3 sections are skipped when restoring into a
// live network.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "nn/models/zoo.hpp"
#include "nn/network.hpp"
#include "sparse/quant.hpp"

namespace ndsnn::nn {

/// Architecture record of a v2 checkpoint: everything make_model needs
/// to rebuild the network the parameters belong to. The RNG seed only
/// affects initialization, which loading overwrites entirely.
struct CheckpointMeta {
  std::string arch;  ///< zoo name: "vgg16" | "resnet19" | "lenet5"
  ModelSpec spec;
};

/// Quantisation record of a v3 checkpoint: one entry per prunable
/// weight parameter, in params() order (== the order the runtime
/// compiler visits weight layers). Scales/zero-points are per row of
/// the lowered [dim(0), numel/dim(0)] weight — for dense-activation
/// layers exactly what sparse::Csr::quantize derives (event-path
/// layers quantise the transposed structure, so their deployed groups
/// are per input feature and only the recorded *precision* carries
/// over). They regenerate deterministically from the stored fp32
/// parameters; recording them makes the deployed precision part of the
/// serving contract and the planes inspectable without the weights.
struct QuantRecordLayer {
  std::string param;  ///< parameter name, e.g. "layer0.weight"
  sparse::Precision precision = sparse::Precision::kFp32;
  std::vector<float> scales;
  std::vector<int8_t> zeros;
};

struct QuantRecord {
  std::vector<QuantRecordLayer> layers;
};

/// Build the record for deploying `network` at `precision`: symmetric
/// per-row scales (zero-points all 0) over every prunable parameter.
[[nodiscard]] QuantRecord build_quant_record(SpikingNetwork& network,
                                             sparse::Precision precision);

/// Write all parameters (weights, biases, BN stats are parameters too).
/// The two-argument form writes a v1 (params-only) checkpoint; passing a
/// CheckpointMeta writes v2 with the architecture record; passing a
/// QuantRecord as well writes v3.
void save_checkpoint(std::ostream& out, SpikingNetwork& network);
void save_checkpoint(std::ostream& out, SpikingNetwork& network, const CheckpointMeta& meta);
void save_checkpoint(std::ostream& out, SpikingNetwork& network, const CheckpointMeta& meta,
                     const QuantRecord& quant);
void save_checkpoint_file(const std::string& path, SpikingNetwork& network);
void save_checkpoint_file(const std::string& path, SpikingNetwork& network,
                          const CheckpointMeta& meta);
void save_checkpoint_file(const std::string& path, SpikingNetwork& network,
                          const CheckpointMeta& meta, const QuantRecord& quant);

/// Restore parameters in place (v1 or v2; a v2 architecture record is
/// skipped — the live network defines the expected shapes). Throws
/// std::runtime_error on any name/shape mismatch or malformed stream.
void load_checkpoint(std::istream& in, SpikingNetwork& network);
void load_checkpoint_file(const std::string& path, SpikingNetwork& network);

/// Read just the architecture record of a v2/v3 checkpoint. Throws
/// std::runtime_error for v1 checkpoints (no record) or bad streams.
[[nodiscard]] CheckpointMeta read_checkpoint_meta(std::istream& in);
[[nodiscard]] CheckpointMeta read_checkpoint_meta_file(const std::string& path);

/// Read the quantisation record of a v3 checkpoint. Throws
/// std::runtime_error for v1/v2 checkpoints (no record).
[[nodiscard]] QuantRecord read_checkpoint_quant(std::istream& in);
[[nodiscard]] QuantRecord read_checkpoint_quant_file(const std::string& path);

/// Rebuild the recorded architecture and restore every parameter from a
/// v2/v3 checkpoint file. Throws std::runtime_error for v1 checkpoints.
/// When `quant` is non-null it receives the v3 quantisation record
/// (left empty for v2 checkpoints).
[[nodiscard]] std::unique_ptr<SpikingNetwork> load_checkpoint_network(
    const std::string& path, QuantRecord* quant = nullptr);

}  // namespace ndsnn::nn
