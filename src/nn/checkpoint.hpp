// Model checkpointing: save/load every parameter tensor of a network.
//
// Format: magic "NDCK", u32 version, u64 param count, then per parameter
// a length-prefixed name and the tensor in the tensor/serialize format.
// Loading validates names and shapes against the live network, so a
// checkpoint can only be restored into the architecture that wrote it.
#pragma once

#include <iosfwd>
#include <string>

#include "nn/network.hpp"

namespace ndsnn::nn {

/// Write all parameters (weights, biases, BN stats are parameters too).
void save_checkpoint(std::ostream& out, SpikingNetwork& network);
void save_checkpoint_file(const std::string& path, SpikingNetwork& network);

/// Restore parameters in place. Throws std::runtime_error on any
/// name/shape mismatch or malformed stream.
void load_checkpoint(std::istream& in, SpikingNetwork& network);
void load_checkpoint_file(const std::string& path, SpikingNetwork& network);

}  // namespace ndsnn::nn
