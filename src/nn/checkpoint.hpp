// Model checkpointing: save/load every parameter tensor of a network,
// optionally tagged with the zoo architecture that produced it.
//
// Format: magic "NDCK", u32 version, then
//   v1: u64 param count, per parameter a length-prefixed name and the
//       tensor in the tensor/serialize format (legacy, params only);
//   v2: a CheckpointMeta block (zoo arch name + the ModelSpec scalars
//       needed to rebuild it) before the v1 parameter section.
// Loading validates names and shapes against the live network, so a
// checkpoint can only be restored into the architecture that wrote it.
// v2 checkpoints additionally support load_checkpoint_network(), which
// rebuilds the recorded architecture and restores it in one call — the
// path runtime::CompiledNetwork::from_checkpoint serves inference from
// without the caller ever instantiating a training network.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "nn/models/zoo.hpp"
#include "nn/network.hpp"

namespace ndsnn::nn {

/// Architecture record of a v2 checkpoint: everything make_model needs
/// to rebuild the network the parameters belong to. The RNG seed only
/// affects initialization, which loading overwrites entirely.
struct CheckpointMeta {
  std::string arch;  ///< zoo name: "vgg16" | "resnet19" | "lenet5"
  ModelSpec spec;
};

/// Write all parameters (weights, biases, BN stats are parameters too).
/// The two-argument form writes a v1 (params-only) checkpoint; passing a
/// CheckpointMeta writes v2 with the architecture record.
void save_checkpoint(std::ostream& out, SpikingNetwork& network);
void save_checkpoint(std::ostream& out, SpikingNetwork& network, const CheckpointMeta& meta);
void save_checkpoint_file(const std::string& path, SpikingNetwork& network);
void save_checkpoint_file(const std::string& path, SpikingNetwork& network,
                          const CheckpointMeta& meta);

/// Restore parameters in place (v1 or v2; a v2 architecture record is
/// skipped — the live network defines the expected shapes). Throws
/// std::runtime_error on any name/shape mismatch or malformed stream.
void load_checkpoint(std::istream& in, SpikingNetwork& network);
void load_checkpoint_file(const std::string& path, SpikingNetwork& network);

/// Read just the architecture record of a v2 checkpoint. Throws
/// std::runtime_error for v1 checkpoints (no record) or bad streams.
[[nodiscard]] CheckpointMeta read_checkpoint_meta(std::istream& in);
[[nodiscard]] CheckpointMeta read_checkpoint_meta_file(const std::string& path);

/// Rebuild the recorded architecture and restore every parameter from a
/// v2 checkpoint file. Throws std::runtime_error for v1 checkpoints.
[[nodiscard]] std::unique_ptr<SpikingNetwork> load_checkpoint_network(const std::string& path);

}  // namespace ndsnn::nn
