#include "sparse/mask.hpp"

#include <numeric>
#include <stdexcept>

namespace ndsnn::sparse {

Mask::Mask(tensor::Shape shape)
    : shape_(std::move(shape)), bits_(static_cast<std::size_t>(shape_.numel()), 1) {}

Mask::Mask(tensor::Shape shape, int64_t active, tensor::Rng& rng)
    : shape_(std::move(shape)), bits_(static_cast<std::size_t>(shape_.numel()), 0) {
  const int64_t n = numel();
  if (active < 0 || active > n) {
    throw std::invalid_argument("Mask: active count " + std::to_string(active) +
                                " out of range [0, " + std::to_string(n) + "]");
  }
  std::vector<int64_t> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  rng.shuffle(perm);
  for (int64_t i = 0; i < active; ++i) bits_[static_cast<std::size_t>(perm[static_cast<std::size_t>(i)])] = 1;
}

int64_t Mask::active_count() const {
  int64_t n = 0;
  for (const uint8_t b : bits_) n += b;
  return n;
}

double Mask::sparsity() const {
  if (bits_.empty()) return 0.0;
  return 1.0 - static_cast<double>(active_count()) / static_cast<double>(numel());
}

void Mask::apply(tensor::Tensor& weights) const {
  if (weights.shape() != shape_) {
    throw std::invalid_argument("Mask::apply: shape mismatch " + weights.shape().str() +
                                " vs " + shape_.str());
  }
  float* w = weights.data();
  const int64_t n = numel();
  for (int64_t i = 0; i < n; ++i) {
    if (!bits_[static_cast<std::size_t>(i)]) w[i] = 0.0F;
  }
}

std::vector<int64_t> Mask::active_indices() const {
  std::vector<int64_t> idx;
  idx.reserve(static_cast<std::size_t>(active_count()));
  for (int64_t i = 0; i < numel(); ++i) {
    if (bits_[static_cast<std::size_t>(i)]) idx.push_back(i);
  }
  return idx;
}

std::vector<int64_t> Mask::inactive_indices() const {
  std::vector<int64_t> idx;
  idx.reserve(static_cast<std::size_t>(numel() - active_count()));
  for (int64_t i = 0; i < numel(); ++i) {
    if (!bits_[static_cast<std::size_t>(i)]) idx.push_back(i);
  }
  return idx;
}

void Mask::deactivate(const std::vector<int64_t>& indices) {
  for (const int64_t i : indices) {
    if (i < 0 || i >= numel()) throw std::invalid_argument("Mask::deactivate: index out of range");
    if (!bits_[static_cast<std::size_t>(i)]) {
      throw std::invalid_argument("Mask::deactivate: index " + std::to_string(i) +
                                  " already inactive");
    }
    bits_[static_cast<std::size_t>(i)] = 0;
  }
}

void Mask::activate(const std::vector<int64_t>& indices) {
  for (const int64_t i : indices) {
    if (i < 0 || i >= numel()) throw std::invalid_argument("Mask::activate: index out of range");
    if (bits_[static_cast<std::size_t>(i)]) {
      throw std::invalid_argument("Mask::activate: index " + std::to_string(i) +
                                  " already active");
    }
    bits_[static_cast<std::size_t>(i)] = 1;
  }
}

}  // namespace ndsnn::sparse
