#include "sparse/bcsr.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "sparse/simd_kernels.hpp"

namespace ndsnn::sparse {

using tensor::Shape;
using tensor::Tensor;

Bcsr Bcsr::from_dense(const Tensor& dense, int64_t block_rows, int64_t block_cols,
                      float threshold) {
  if (dense.rank() != 2) {
    throw std::invalid_argument("Bcsr::from_dense: expected rank-2, got " +
                                dense.shape().str());
  }
  if (block_rows < 1 || block_cols < 1) {
    throw std::invalid_argument("Bcsr::from_dense: block dims must be >= 1");
  }
  if (threshold < 0.0F) {
    throw std::invalid_argument("Bcsr::from_dense: threshold must be >= 0");
  }
  Bcsr bcsr;
  bcsr.rows_ = dense.dim(0);
  bcsr.cols_ = dense.dim(1);
  bcsr.block_rows_ = block_rows;
  bcsr.block_cols_ = block_cols;
  const int64_t mb = bcsr.block_row_count();
  const int64_t nb = (bcsr.cols_ + block_cols - 1) / block_cols;
  const int64_t bs = block_rows * block_cols;
  const float* src = dense.data();

  bcsr.block_row_ptr_.reserve(static_cast<std::size_t>(mb) + 1);
  bcsr.block_row_ptr_.push_back(0);
  std::vector<float> block(static_cast<std::size_t>(bs));
  for (int64_t ib = 0; ib < mb; ++ib) {
    const int64_t row0 = ib * block_rows;
    const int64_t r_lim = std::min(block_rows, bcsr.rows_ - row0);
    for (int64_t jb = 0; jb < nb; ++jb) {
      const int64_t col0 = jb * block_cols;
      const int64_t c_lim = std::min(block_cols, bcsr.cols_ - col0);
      std::fill(block.begin(), block.end(), 0.0F);
      int64_t surviving = 0;
      for (int64_t r = 0; r < r_lim; ++r) {
        const float* wrow = src + (row0 + r) * bcsr.cols_ + col0;
        for (int64_t c = 0; c < c_lim; ++c) {
          const float v = wrow[c];
          if (std::fabs(v) > threshold) {
            block[static_cast<std::size_t>(r * block_cols + c)] = v;
            ++surviving;
          }
        }
      }
      if (surviving > 0) {
        bcsr.block_col_idx_.push_back(static_cast<int32_t>(jb));
        bcsr.values_.insert(bcsr.values_.end(), block.begin(), block.end());
        bcsr.nnz_ += surviving;
      }
    }
    bcsr.block_row_ptr_.push_back(bcsr.block_count());
  }
  return bcsr;
}

Bcsr Bcsr::from_weights(const Tensor& weights, int64_t block_rows, int64_t block_cols,
                        float threshold) {
  if (weights.rank() < 2) {
    throw std::invalid_argument("Bcsr::from_weights: expected rank >= 2, got " +
                                weights.shape().str());
  }
  const int64_t rows = weights.dim(0);
  return from_dense(weights.reshaped(Shape{rows, weights.numel() / rows}), block_rows,
                    block_cols, threshold);
}

double BcsrStats::occupancy() const {
  const int64_t stored = occupied_blocks * block_size;
  return stored == 0 ? 0.0 : static_cast<double>(nnz) / static_cast<double>(stored);
}

double BcsrStats::sparsity() const {
  return total == 0 ? 0.0 : 1.0 - static_cast<double>(nnz) / static_cast<double>(total);
}

BcsrStats Bcsr::measure_weights(const Tensor& weights, int64_t block_rows,
                                int64_t block_cols, float threshold) {
  if (weights.rank() < 2) {
    throw std::invalid_argument("Bcsr::measure_weights: expected rank >= 2, got " +
                                weights.shape().str());
  }
  if (block_rows < 1 || block_cols < 1) {
    throw std::invalid_argument("Bcsr::measure_weights: block dims must be >= 1");
  }
  const int64_t rows = weights.dim(0);
  const int64_t cols = weights.numel() / rows;
  BcsrStats stats;
  stats.total = rows * cols;
  stats.block_size = block_rows * block_cols;
  const float* w = weights.data();
  for (int64_t row0 = 0; row0 < rows; row0 += block_rows) {
    const int64_t r_lim = std::min(block_rows, rows - row0);
    for (int64_t col0 = 0; col0 < cols; col0 += block_cols) {
      const int64_t c_lim = std::min(block_cols, cols - col0);
      int64_t in_block = 0;
      for (int64_t r = 0; r < r_lim; ++r) {
        const float* wrow = w + (row0 + r) * cols + col0;
        for (int64_t c = 0; c < c_lim; ++c) {
          in_block += std::fabs(wrow[c]) > threshold;
        }
      }
      stats.nnz += in_block;
      stats.occupied_blocks += in_block > 0;
    }
  }
  return stats;
}

Bcsr Bcsr::from_nm(const Tensor& dense, const NmPattern& pattern, int64_t block_rows,
                   float threshold) {
  pattern.validate();
  Tensor projected = dense;
  project_nm(projected, pattern);
  return from_dense(projected, block_rows, pattern.m, threshold);
}

float Bcsr::quantize(Precision precision, bool symmetric, bool uniform_scale) {
  if (precision == Precision::kFp32) return 0.0F;
  if (quant_.present()) throw std::logic_error("Bcsr::quantize: already quantised");
  float err = 0.0F;
  quant_ = quantize_fixed(values_.data(), block_count(), block_rows_ * block_cols_,
                          precision, symmetric, &err, uniform_scale);
  values_.clear();
  values_.shrink_to_fit();
  return err;
}

void Bcsr::dequantize() {
  if (!quant_.present()) return;
  const int64_t bs = block_rows_ * block_cols_;
  values_.resize(static_cast<std::size_t>(block_count() * bs));
  for (int64_t k = 0; k < block_count(); ++k) {
    for (int64_t e = 0; e < bs; ++e) {
      values_[static_cast<std::size_t>(k * bs + e)] = quant_.dequant(k, k * bs + e);
    }
  }
  quant_ = QuantPlane{};
}

int64_t Bcsr::memory_bytes() const {
  const int64_t indices = static_cast<int64_t>(block_row_ptr_.size()) * 8 +
                          static_cast<int64_t>(block_col_idx_.size()) * 4;
  return indices + (quant_.present() ? quant_.memory_bytes()
                                     : static_cast<int64_t>(values_.size()) * 4);
}

Tensor Bcsr::to_dense() const {
  Tensor out(Shape{rows_, cols_});
  const int64_t bs = block_rows_ * block_cols_;
  float* dst = out.data();
  const int64_t mb = block_row_count();
  for (int64_t ib = 0; ib < mb; ++ib) {
    const int64_t row0 = ib * block_rows_;
    const int64_t r_lim = std::min(block_rows_, rows_ - row0);
    for (int64_t k = block_row_ptr_[static_cast<std::size_t>(ib)];
         k < block_row_ptr_[static_cast<std::size_t>(ib) + 1]; ++k) {
      const int64_t col0 = static_cast<int64_t>(block_col_idx_[static_cast<std::size_t>(k)]) *
                           block_cols_;
      const int64_t c_lim = std::min(block_cols_, cols_ - col0);
      const float* vals = quant_.present() ? nullptr : values_.data() + k * bs;
      for (int64_t r = 0; r < r_lim; ++r) {
        for (int64_t c = 0; c < c_lim; ++c) {
          const int64_t e = r * block_cols_ + c;
          dst[(row0 + r) * cols_ + col0 + c] =
              vals != nullptr ? vals[e] : quant_.dequant(k, k * bs + e);
        }
      }
    }
  }
  return out;
}

Bcsr Bcsr::transposed() const {
  if (quant_.present()) {
    throw std::logic_error("Bcsr::transposed: transpose before quantize");
  }
  // Round-trip through dense with threshold 0: to_dense() materializes
  // exactly the surviving |w| > threshold entries (explicit in-block
  // zeros stay zero), so the transposed build keeps nnz identical and
  // re-blocks on the swapped grid.
  const Tensor dense = to_dense();
  Tensor dense_t(Shape{cols_, rows_});
  const float* src = dense.data();
  float* dst = dense_t.data();
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t c = 0; c < cols_; ++c) dst[c * rows_ + r] = src[r * cols_ + c];
  }
  return from_dense(dense_t, block_cols_, block_rows_, 0.0F);
}

void Bcsr::spmv_gather(const float* x, const int32_t* active, int64_t n_active,
                       double* acc, int32_t* iacc, util::simd::Tier tier) const {
  // Single body across tiers (see the header).
  (void)util::simd::resolve(tier);
  const int64_t bs = block_rows_ * block_cols_;
  // Binary-spike fast path (mirrors Csr::spmv_gather): one plane-wide
  // scale + {0,1} activations reduce the gather to int32 code sums,
  // dequantised once per output.
  if (quant_.present() && quant_.uniform && iacc != nullptr && n_active > 0 &&
      !quant_.zero.empty() && quant_.zero[0] == 0) {
    bool binary = true;
    for (int64_t a = 0; a < n_active; ++a) binary &= x[active[a]] == 1.0F;
    if (binary) {
      std::fill(iacc, iacc + cols_, 0);
      for (int64_t a = 0; a < n_active; ++a) {
        const int64_t j = active[a];
        const int64_t ib = j / block_rows_;
        const int64_t r = j % block_rows_;
        for (int64_t k = block_row_ptr_[static_cast<std::size_t>(ib)];
             k < block_row_ptr_[static_cast<std::size_t>(ib) + 1]; ++k) {
          const int64_t col0 =
              static_cast<int64_t>(block_col_idx_[static_cast<std::size_t>(k)]) * block_cols_;
          const int64_t c_lim = std::min(block_cols_, cols_ - col0);
          const int64_t e0 = k * bs + r * block_cols_;
          int32_t* irow = iacc + col0;
          for (int64_t cc = 0; cc < c_lim; ++cc) {
            irow[cc] += static_cast<int32_t>(quant_.code(e0 + cc));
          }
        }
      }
      const double s = static_cast<double>(quant_.scale[0]);
      for (int64_t c = 0; c < cols_; ++c) {
        if (iacc[c] != 0) acc[c] += s * static_cast<double>(iacc[c]);
      }
      return;
    }
  }
  for (int64_t a = 0; a < n_active; ++a) {
    const int64_t j = active[a];
    const double xj = static_cast<double>(x[j]);
    const int64_t ib = j / block_rows_;
    const int64_t r = j % block_rows_;
    for (int64_t k = block_row_ptr_[static_cast<std::size_t>(ib)];
         k < block_row_ptr_[static_cast<std::size_t>(ib) + 1]; ++k) {
      const int64_t col0 =
          static_cast<int64_t>(block_col_idx_[static_cast<std::size_t>(k)]) * block_cols_;
      const int64_t c_lim = std::min(block_cols_, cols_ - col0);
      double* arow = acc + col0;
      if (quant_.present()) {
        // Fold the block scale into the activation once per (input,
        // block); each term is then a small-int multiply-add.
        const double u = static_cast<double>(quant_.scale[static_cast<std::size_t>(k)]) * xj;
        const int zp = quant_.zero[static_cast<std::size_t>(k)];
        const int64_t e0 = k * bs + r * block_cols_;
        for (int64_t cc = 0; cc < c_lim; ++cc) {
          arow[cc] += static_cast<double>(static_cast<int>(quant_.code(e0 + cc)) - zp) * u;
        }
      } else {
        const float* vrow = values_.data() + k * bs + r * block_cols_;
        for (int64_t cc = 0; cc < c_lim; ++cc) {
          arow[cc] += static_cast<double>(vrow[cc]) * xj;
        }
      }
    }
  }
}

void Bcsr::scatter_row(int64_t row, float x, float* out, int64_t out_stride,
                       util::simd::Tier tier) const {
  (void)util::simd::resolve(tier);  // single body across tiers (see header)
  const int64_t bs = block_rows_ * block_cols_;
  const int64_t ib = row / block_rows_;
  const int64_t r = row % block_rows_;
  for (int64_t k = block_row_ptr_[static_cast<std::size_t>(ib)];
       k < block_row_ptr_[static_cast<std::size_t>(ib) + 1]; ++k) {
    const int64_t col0 =
        static_cast<int64_t>(block_col_idx_[static_cast<std::size_t>(k)]) * block_cols_;
    const int64_t c_lim = std::min(block_cols_, cols_ - col0);
    if (quant_.present()) {
      const float xs = quant_.scale[static_cast<std::size_t>(k)] * x;
      const int zp = quant_.zero[static_cast<std::size_t>(k)];
      const int64_t e0 = k * bs + r * block_cols_;
      for (int64_t cc = 0; cc < c_lim; ++cc) {
        out[(col0 + cc) * out_stride] +=
            static_cast<float>(static_cast<int>(quant_.code(e0 + cc)) - zp) * xs;
      }
    } else {
      const float* vrow = values_.data() + k * bs + r * block_cols_;
      for (int64_t cc = 0; cc < c_lim; ++cc) {
        out[(col0 + cc) * out_stride] += vrow[cc] * x;
      }
    }
  }
}

void Bcsr::scatter_row_range(int64_t row, float x, float* out, int64_t out_stride,
                             int64_t col_begin, int64_t col_end) const {
  const int64_t bs = block_rows_ * block_cols_;
  const int64_t ib = row / block_rows_;
  const int64_t r = row % block_rows_;
  for (int64_t k = block_row_ptr_[static_cast<std::size_t>(ib)];
       k < block_row_ptr_[static_cast<std::size_t>(ib) + 1]; ++k) {
    const int64_t col0 =
        static_cast<int64_t>(block_col_idx_[static_cast<std::size_t>(k)]) * block_cols_;
    if (col0 >= col_end) break;  // block columns are ascending
    const int64_t c_lim = std::min(block_cols_, cols_ - col0);
    const int64_t cc0 = std::max<int64_t>(0, col_begin - col0);
    const int64_t cc1 = std::min(c_lim, col_end - col0);
    if (cc0 >= cc1) continue;
    if (quant_.present()) {
      const float xs = quant_.scale[static_cast<std::size_t>(k)] * x;
      const int zp = quant_.zero[static_cast<std::size_t>(k)];
      const int64_t e0 = k * bs + r * block_cols_;
      for (int64_t cc = cc0; cc < cc1; ++cc) {
        out[(col0 + cc) * out_stride] +=
            static_cast<float>(static_cast<int>(quant_.code(e0 + cc)) - zp) * xs;
      }
    } else {
      const float* vrow = values_.data() + k * bs + r * block_cols_;
      for (int64_t cc = cc0; cc < cc1; ++cc) {
        out[(col0 + cc) * out_stride] += vrow[cc] * x;
      }
    }
  }
}

namespace {

/// Output-column strip width of the spmm tile kernels. One strip row is
/// one `vfs` value below: 2 ZMM on AVX-512, 4 YMM on AVX2 (when
/// NDSNN_NATIVE_ARCH enables them), SSE quads otherwise.
constexpr int64_t kStrip = 16;

#if defined(__GNUC__) || defined(__clang__)
#define NDSNN_BCSR_VEC 1
/// Strip-width float vector. A vfs is one "scalar" to the register
/// allocator, so a BR-row accumulator tile of them reliably stays in
/// registers — gcc spills rows of the equivalent float[BR][kStrip]
/// array, serializing the FMA stream on a stack slot.
typedef float vfs __attribute__((vector_size(kStrip * sizeof(float))));

inline vfs vload_strip(const float* p) {
  vfs r;
  __builtin_memcpy(&r, p, sizeof r);
  return r;
}

inline void vstore_strip(float* p, vfs v) { __builtin_memcpy(p, &v, sizeof v); }
#endif

/// One j-strip of one block row, runtime bounds (tail strips, the last
/// partial block row). Same ascending-column accumulation order as the
/// constant-bound fast path.
inline void spmm_strip_slow(const std::vector<int32_t>& block_col_idx,
                            const std::vector<float>& values, int64_t k0, int64_t k1,
                            int64_t br, int64_t bc, int64_t r_lim, int64_t cols,
                            const float* bp, int64_t n, int64_t j0, int64_t jt,
                            float* acc /* [br * jt] */) {
  std::fill(acc, acc + r_lim * jt, 0.0F);
  for (int64_t k = k0; k < k1; ++k) {
    const int64_t col0 = static_cast<int64_t>(block_col_idx[static_cast<std::size_t>(k)]) * bc;
    const int64_t c_lim = std::min(bc, cols - col0);
    const float* vals = values.data() + k * br * bc;
    for (int64_t cc = 0; cc < c_lim; ++cc) {
      const float* brow = bp + (col0 + cc) * n + j0;
      for (int64_t r = 0; r < r_lim; ++r) {
        const float v = vals[r * bc + cc];
        if (v == 0.0F) continue;
        float* arow = acc + r * jt;
        for (int64_t j = 0; j < jt; ++j) arow[j] += v * brow[j];
      }
    }
  }
}

/// spmm worker. Strip-mine the output columns: a BR x kStrip accumulator
/// tile stays register resident across the whole block row, so each C
/// row is written once per strip instead of re-streamed per nonzero (the
/// CSR kernel's main cost), and each B row strip loaded once serves all
/// BR output rows. The dispatch below instantiates the common block
/// shapes with compile-time BR/BC so the tile loops fully unroll.
/// Interior and edge blocks accumulate in the same ascending-column
/// order (explicit zeros contribute exact no-ops), keeping results
/// bitwise identical to Csr::spmm.
template <int64_t BR, int64_t BC>
void spmm_worker(const std::vector<int64_t>& block_row_ptr,
                 const std::vector<int32_t>& block_col_idx, const std::vector<float>& values,
                 int64_t rows, int64_t cols, const float* bp, int64_t n, float* cp,
                 int64_t ib0, int64_t ib1) {
  const int64_t n_full = n - n % kStrip;
  std::vector<float> slow_acc(static_cast<std::size_t>(BR * kStrip));
  for (int64_t ib = ib0; ib < ib1; ++ib) {
    const int64_t row0 = ib * BR;
    const int64_t r_lim = std::min(BR, rows - row0);
    const int64_t k0 = block_row_ptr[static_cast<std::size_t>(ib)];
    const int64_t k1 = block_row_ptr[static_cast<std::size_t>(ib) + 1];
    if (k0 == k1) continue;  // empty block row: C stays zero
    if (r_lim == BR) {
      // Full strips of a full block row: the hot path.
      for (int64_t j0 = 0; j0 < n_full; j0 += kStrip) {
#ifdef NDSNN_BCSR_VEC
        vfs acc[BR];
        for (int64_t r = 0; r < BR; ++r) acc[r] = vfs{};
        const float* bpj = bp + j0;
        for (int64_t k = k0; k < k1; ++k) {
          const int64_t col0 =
              static_cast<int64_t>(block_col_idx[static_cast<std::size_t>(k)]) * BC;
          const float* vals = values.data() + k * BR * BC;
          if (col0 + BC <= cols) {
            // Interior block: constant trip counts, the whole BR x BC
            // FMA tile unrolls straightline.
            for (int64_t cc = 0; cc < BC; ++cc) {
              const vfs b = vload_strip(bpj + (col0 + cc) * n);
              for (int64_t r = 0; r < BR; ++r) acc[r] += b * vals[r * BC + cc];
            }
          } else {
            const int64_t c_lim = cols - col0;
            for (int64_t cc = 0; cc < c_lim; ++cc) {
              const vfs b = vload_strip(bpj + (col0 + cc) * n);
              for (int64_t r = 0; r < BR; ++r) acc[r] += b * vals[r * BC + cc];
            }
          }
        }
        for (int64_t r = 0; r < BR; ++r) vstore_strip(cp + (row0 + r) * n + j0, acc[r]);
#else
        float acc[BR][kStrip];
        for (int64_t r = 0; r < BR; ++r) {
          for (int64_t j = 0; j < kStrip; ++j) acc[r][j] = 0.0F;
        }
        for (int64_t k = k0; k < k1; ++k) {
          const int64_t col0 =
              static_cast<int64_t>(block_col_idx[static_cast<std::size_t>(k)]) * BC;
          const float* vals = values.data() + k * BR * BC;
          const int64_t c_lim = col0 + BC <= cols ? BC : cols - col0;
          for (int64_t cc = 0; cc < c_lim; ++cc) {
            const float* brow = bp + (col0 + cc) * n + j0;
            for (int64_t r = 0; r < BR; ++r) {
              const float v = vals[r * BC + cc];
              for (int64_t j = 0; j < kStrip; ++j) acc[r][j] += v * brow[j];
            }
          }
        }
        for (int64_t r = 0; r < BR; ++r) {
          float* crow = cp + (row0 + r) * n + j0;
          for (int64_t j = 0; j < kStrip; ++j) crow[j] = acc[r][j];
        }
#endif
      }
      if (n_full < n) {
        const int64_t jt = n - n_full;
        spmm_strip_slow(block_col_idx, values, k0, k1, BR, BC, BR, cols, bp, n, n_full, jt,
                        slow_acc.data());
        for (int64_t r = 0; r < BR; ++r) {
          float* crow = cp + (row0 + r) * n + n_full;
          const float* arow = slow_acc.data() + r * jt;
          for (int64_t j = 0; j < jt; ++j) crow[j] = arow[j];
        }
      }
    } else {
      // Bottom partial block row: runtime bounds throughout.
      for (int64_t j0 = 0; j0 < n; j0 += kStrip) {
        const int64_t jt = std::min(kStrip, n - j0);
        spmm_strip_slow(block_col_idx, values, k0, k1, BR, BC, r_lim, cols, bp, n, j0, jt,
                        slow_acc.data());
        for (int64_t r = 0; r < r_lim; ++r) {
          float* crow = cp + (row0 + r) * n + j0;
          const float* arow = slow_acc.data() + r * jt;
          for (int64_t j = 0; j < jt; ++j) crow[j] = arow[j];
        }
      }
    }
  }
}

/// spmm_t worker: double accumulators per output element to mirror
/// matmul_nt / Csr::spmm_t bitwise; the inner loop over a block's
/// columns is contiguous over both the stored values and the B row
/// segment, and the BR accumulator chains are independent (the ILP the
/// serial per-nonzero CSR gather lacks).
template <int64_t BR, int64_t BC>
void spmm_t_worker(const std::vector<int64_t>& block_row_ptr,
                   const std::vector<int32_t>& block_col_idx,
                   const std::vector<float>& values, int64_t rows, int64_t cols,
                   const float* bp, int64_t m, float* cp, int64_t ib0, int64_t ib1) {
  double acc[BR];
  for (int64_t i = 0; i < m; ++i) {
    const float* brow = bp + i * cols;
    float* crow = cp + i * rows;
    for (int64_t ib = ib0; ib < ib1; ++ib) {
      const int64_t row0 = ib * BR;
      const int64_t r_lim = std::min(BR, rows - row0);
      for (int64_t r = 0; r < BR; ++r) acc[r] = 0.0;
      for (int64_t k = block_row_ptr[static_cast<std::size_t>(ib)];
           k < block_row_ptr[static_cast<std::size_t>(ib) + 1]; ++k) {
        const int64_t col0 =
            static_cast<int64_t>(block_col_idx[static_cast<std::size_t>(k)]) * BC;
        const float* vals = values.data() + k * BR * BC;
        const float* bseg = brow + col0;
        // cc outer / r inner: each acc[r] still sums its columns in
        // ascending order (bitwise-stable), but consecutive FMAs hit
        // different accumulator chains, so the BR chains pipeline
        // instead of serializing on the FMA latency.
        if (col0 + BC <= cols) {
          for (int64_t cc = 0; cc < BC; ++cc) {
            const double b = static_cast<double>(bseg[cc]);
            for (int64_t r = 0; r < BR; ++r) {
              acc[r] += static_cast<double>(vals[r * BC + cc]) * b;
            }
          }
        } else {
          const int64_t c_lim = cols - col0;
          for (int64_t cc = 0; cc < c_lim; ++cc) {
            const double b = static_cast<double>(bseg[cc]);
            for (int64_t r = 0; r < BR; ++r) {
              acc[r] += static_cast<double>(vals[r * BC + cc]) * b;
            }
          }
        }
      }
      for (int64_t r = 0; r < r_lim; ++r) {
        crow[row0 + r] = static_cast<float>(acc[r]);
      }
    }
  }
}

// The hot block shapes get compile-time bounds; everything else takes
// the generic runtime-bound workers below. Results are identical either
// way — only the unrolling differs.
using SpmmFn = void (*)(const std::vector<int64_t>&, const std::vector<int32_t>&,
                        const std::vector<float>&, int64_t, int64_t, const float*, int64_t,
                        float*, int64_t, int64_t);

SpmmFn pick_spmm(int64_t br, int64_t bc) {
  if (br == 4 && bc == 4) return &spmm_worker<4, 4>;
  if (br == 8 && bc == 4) return &spmm_worker<8, 4>;
  if (br == 2 && bc == 2) return &spmm_worker<2, 2>;
  if (br == 4 && bc == 8) return &spmm_worker<4, 8>;
  if (br == 1 && bc == 4) return &spmm_worker<1, 4>;
  return nullptr;
}

SpmmFn pick_spmm_t(int64_t br, int64_t bc) {
  if (br == 4 && bc == 4) return &spmm_t_worker<4, 4>;
  if (br == 8 && bc == 4) return &spmm_t_worker<8, 4>;
  if (br == 2 && bc == 2) return &spmm_t_worker<2, 2>;
  if (br == 4 && bc == 8) return &spmm_t_worker<4, 8>;
  if (br == 1 && bc == 4) return &spmm_t_worker<1, 4>;
  return nullptr;
}

/// Generic runtime-bound fallbacks (arbitrary block shapes).
void spmm_generic(const std::vector<int64_t>& block_row_ptr,
                  const std::vector<int32_t>& block_col_idx, const std::vector<float>& values,
                  int64_t rows, int64_t cols, int64_t br, int64_t bc, const float* bp,
                  int64_t n, float* cp, int64_t ib0, int64_t ib1) {
  std::vector<float> acc(static_cast<std::size_t>(br * kStrip));
  for (int64_t ib = ib0; ib < ib1; ++ib) {
    const int64_t row0 = ib * br;
    const int64_t r_lim = std::min(br, rows - row0);
    const int64_t k0 = block_row_ptr[static_cast<std::size_t>(ib)];
    const int64_t k1 = block_row_ptr[static_cast<std::size_t>(ib) + 1];
    if (k0 == k1) continue;
    for (int64_t j0 = 0; j0 < n; j0 += kStrip) {
      const int64_t jt = std::min(kStrip, n - j0);
      std::fill(acc.begin(), acc.begin() + r_lim * kStrip, 0.0F);
      for (int64_t k = k0; k < k1; ++k) {
        const int64_t col0 =
            static_cast<int64_t>(block_col_idx[static_cast<std::size_t>(k)]) * bc;
        const int64_t c_lim = std::min(bc, cols - col0);
        const float* vals = values.data() + k * br * bc;
        for (int64_t cc = 0; cc < c_lim; ++cc) {
          const float* brow = bp + (col0 + cc) * n + j0;
          for (int64_t r = 0; r < r_lim; ++r) {
            const float v = vals[r * bc + cc];
            if (v == 0.0F) continue;
            float* arow = acc.data() + r * kStrip;
            for (int64_t j = 0; j < jt; ++j) arow[j] += v * brow[j];
          }
        }
      }
      for (int64_t r = 0; r < r_lim; ++r) {
        float* crow = cp + (row0 + r) * n + j0;
        const float* arow = acc.data() + r * kStrip;
        for (int64_t j = 0; j < jt; ++j) crow[j] = arow[j];
      }
    }
  }
}

void spmm_t_generic(const std::vector<int64_t>& block_row_ptr,
                    const std::vector<int32_t>& block_col_idx,
                    const std::vector<float>& values, int64_t rows, int64_t cols, int64_t br,
                    int64_t bc, const float* bp, int64_t m, float* cp, int64_t ib0,
                    int64_t ib1) {
  std::vector<double> acc(static_cast<std::size_t>(br));
  for (int64_t i = 0; i < m; ++i) {
    const float* brow = bp + i * cols;
    float* crow = cp + i * rows;
    for (int64_t ib = ib0; ib < ib1; ++ib) {
      const int64_t row0 = ib * br;
      const int64_t r_lim = std::min(br, rows - row0);
      std::fill(acc.begin(), acc.begin() + r_lim, 0.0);
      for (int64_t k = block_row_ptr[static_cast<std::size_t>(ib)];
           k < block_row_ptr[static_cast<std::size_t>(ib) + 1]; ++k) {
        const int64_t col0 =
            static_cast<int64_t>(block_col_idx[static_cast<std::size_t>(k)]) * bc;
        const int64_t c_lim = std::min(bc, cols - col0);
        const float* vals = values.data() + k * br * bc;
        const float* bseg = brow + col0;
        for (int64_t r = 0; r < r_lim; ++r) {
          const float* vrow = vals + r * bc;
          double a = acc[static_cast<std::size_t>(r)];
          for (int64_t cc = 0; cc < c_lim; ++cc) {
            a += static_cast<double>(vrow[cc]) * bseg[cc];
          }
          acc[static_cast<std::size_t>(r)] = a;
        }
      }
      for (int64_t r = 0; r < r_lim; ++r) {
        crow[row0 + r] = static_cast<float>(acc[static_cast<std::size_t>(r)]);
      }
    }
  }
}

/// Quantised spmm: decode each block row's stored blocks into a
/// dequantised buffer once per block row (not once per strip — the
/// scale multiply amortizes across all of the row's n outputs), then
/// run the generic strip accumulation over it. No bitwise contract on
/// quantised execution.
void spmm_quant(const QuantPlane& plane, const std::vector<int64_t>& block_row_ptr,
                const std::vector<int32_t>& block_col_idx, int64_t rows, int64_t cols,
                int64_t br, int64_t bc, const float* bp, int64_t n, float* cp, int64_t ib0,
                int64_t ib1) {
  const int64_t bs = br * bc;
  std::vector<float> acc(static_cast<std::size_t>(br * kStrip));
  std::vector<float> drow_blocks;
  for (int64_t ib = ib0; ib < ib1; ++ib) {
    const int64_t row0 = ib * br;
    const int64_t r_lim = std::min(br, rows - row0);
    const int64_t k0 = block_row_ptr[static_cast<std::size_t>(ib)];
    const int64_t k1 = block_row_ptr[static_cast<std::size_t>(ib) + 1];
    if (k0 == k1) continue;
    drow_blocks.resize(static_cast<std::size_t>((k1 - k0) * bs));
    for (int64_t k = k0; k < k1; ++k) {
      const float s = plane.scale[static_cast<std::size_t>(k)];
      const int zp = plane.zero[static_cast<std::size_t>(k)];
      float* dst = drow_blocks.data() + (k - k0) * bs;
      for (int64_t e = 0; e < bs; ++e) {
        dst[e] = s * static_cast<float>(static_cast<int>(plane.code(k * bs + e)) - zp);
      }
    }
    for (int64_t j0 = 0; j0 < n; j0 += kStrip) {
      const int64_t jt = std::min(kStrip, n - j0);
      std::fill(acc.begin(), acc.begin() + r_lim * kStrip, 0.0F);
      for (int64_t k = k0; k < k1; ++k) {
        const int64_t col0 =
            static_cast<int64_t>(block_col_idx[static_cast<std::size_t>(k)]) * bc;
        const int64_t c_lim = std::min(bc, cols - col0);
        const float* dblock = drow_blocks.data() + (k - k0) * bs;
        for (int64_t cc = 0; cc < c_lim; ++cc) {
          const float* brow = bp + (col0 + cc) * n + j0;
          for (int64_t r = 0; r < r_lim; ++r) {
            const float v = dblock[r * bc + cc];
            if (v == 0.0F) continue;
            float* arow = acc.data() + r * kStrip;
            for (int64_t j = 0; j < jt; ++j) arow[j] += v * brow[j];
          }
        }
      }
      for (int64_t r = 0; r < r_lim; ++r) {
        float* crow = cp + (row0 + r) * n + j0;
        const float* arow = acc.data() + r * kStrip;
        for (int64_t j = 0; j < jt; ++j) crow[j] = arow[j];
      }
    }
  }
}

/// Quantised spmm_t: raw-code partial sums per (block, output row),
/// dequantised once per block — the activation-segment sum handles a
/// nonzero zero-point and is shared across the block's rows.
void spmm_t_quant(const QuantPlane& plane, const std::vector<int64_t>& block_row_ptr,
                  const std::vector<int32_t>& block_col_idx, int64_t rows, int64_t cols,
                  int64_t br, int64_t bc, const float* bp, int64_t m, float* cp, int64_t ib0,
                  int64_t ib1) {
  const int64_t bs = br * bc;
  std::vector<double> acc(static_cast<std::size_t>(br));
  for (int64_t i = 0; i < m; ++i) {
    const float* brow = bp + i * cols;
    float* crow = cp + i * rows;
    for (int64_t ib = ib0; ib < ib1; ++ib) {
      const int64_t row0 = ib * br;
      const int64_t r_lim = std::min(br, rows - row0);
      std::fill(acc.begin(), acc.begin() + r_lim, 0.0);
      for (int64_t k = block_row_ptr[static_cast<std::size_t>(ib)];
           k < block_row_ptr[static_cast<std::size_t>(ib) + 1]; ++k) {
        const int64_t col0 =
            static_cast<int64_t>(block_col_idx[static_cast<std::size_t>(k)]) * bc;
        const int64_t c_lim = std::min(bc, cols - col0);
        const float* bseg = brow + col0;
        const float s = plane.scale[static_cast<std::size_t>(k)];
        const int zp = plane.zero[static_cast<std::size_t>(k)];
        float bsum = 0.0F;
        if (zp != 0) {
          for (int64_t cc = 0; cc < c_lim; ++cc) bsum += bseg[cc];
        }
        for (int64_t r = 0; r < r_lim; ++r) {
          const int64_t e0 = k * bs + r * bc;
          float part = 0.0F;
          for (int64_t cc = 0; cc < c_lim; ++cc) {
            part += static_cast<float>(plane.code(e0 + cc)) * bseg[cc];
          }
          acc[static_cast<std::size_t>(r)] +=
              static_cast<double>(s * (part - static_cast<float>(zp) * bsum));
        }
      }
      for (int64_t r = 0; r < r_lim; ++r) {
        crow[row0 + r] = static_cast<float>(acc[static_cast<std::size_t>(r)]);
      }
    }
  }
}

}  // namespace

Tensor Bcsr::spmm(const Tensor& b, util::ThreadPool* pool, util::simd::Tier tier) const {
  if (b.rank() != 2 || b.dim(0) != cols_) {
    throw std::invalid_argument("Bcsr::spmm: expected B [" + std::to_string(cols_) +
                                ", n], got " + b.shape().str());
  }
  const int64_t n = b.dim(1);
  Tensor c(Shape{rows_, n});
  const int64_t mb = block_row_count();
  // kScalar pins the runtime-bound generic worker; the vector-extension
  // tile workers serve both kVector and kAvx2 (they are the format's
  // native vector shape — see the header). Same sums either way.
  const bool scalar_only = util::simd::resolve(tier) == util::simd::Tier::kScalar;
  const auto range = [&](int64_t ib0, int64_t ib1) {
    if (quant_.present()) {
      spmm_quant(quant_, block_row_ptr_, block_col_idx_, rows_, cols_, block_rows_,
                 block_cols_, b.data(), n, c.data(), ib0, ib1);
      return;
    }
    const SpmmFn fn = scalar_only ? nullptr : pick_spmm(block_rows_, block_cols_);
    if (fn != nullptr) {
      fn(block_row_ptr_, block_col_idx_, values_, rows_, cols_, b.data(), n, c.data(), ib0,
         ib1);
    } else {
      spmm_generic(block_row_ptr_, block_col_idx_, values_, rows_, cols_, block_rows_,
                   block_cols_, b.data(), n, c.data(), ib0, ib1);
    }
  };
  // Block rows are the partition unit; stored blocks per block row (the
  // block_row_ptr prefix sums) are proportional to the dense-micro-block
  // FLOPs, so the balanced split equalizes real work.
  util::parallel_balanced(pool, block_row_ptr_.data(), mb, stored_values() * n, range);
  return c;
}

Tensor Bcsr::spmm_t(const Tensor& b, util::ThreadPool* pool, util::simd::Tier tier) const {
  if (b.rank() != 2 || b.dim(1) != cols_) {
    throw std::invalid_argument("Bcsr::spmm_t: expected B [m, " + std::to_string(cols_) +
                                "], got " + b.shape().str());
  }
  const int64_t m = b.dim(0);
  Tensor c(Shape{m, rows_});
  const int64_t mb = block_row_count();
  const util::simd::Tier t = util::simd::resolve(tier);
  if (t == util::simd::Tier::kAvx2 && simd::built_with_avx2() && !quant_.present() &&
      m >= 8 && stored_values() >= cols_) {
    // Batch-panel AVX2 route, mirroring Csr::spmm_t's gate: bt = Bᵀ
    // built once, 8 batch lanes per pass in exact double chains.
    std::vector<float> bt(static_cast<std::size_t>(cols_ * m));
    util::parallel_even(pool, 0, cols_, cols_ * m, [&](int64_t c0, int64_t c1) {
      simd::transpose_f32(b.data(), m, cols_, bt.data(), c0, c1);
    });
    util::parallel_balanced(pool, block_row_ptr_.data(), mb, stored_values() * m,
                            [&](int64_t ib0, int64_t ib1) {
                              simd::bcsr_spmm_t_f32_avx2(
                                  block_row_ptr_.data(), block_col_idx_.data(),
                                  values_.data(), rows_, cols_, block_rows_, block_cols_,
                                  bt.data(), m, c.data(), ib0, ib1);
                            });
    return c;
  }
  const bool scalar_only = t == util::simd::Tier::kScalar;
  const auto range = [&](int64_t ib0, int64_t ib1) {
    if (quant_.present()) {
      spmm_t_quant(quant_, block_row_ptr_, block_col_idx_, rows_, cols_, block_rows_,
                   block_cols_, b.data(), m, c.data(), ib0, ib1);
      return;
    }
    const SpmmFn fn = scalar_only ? nullptr : pick_spmm_t(block_rows_, block_cols_);
    if (fn != nullptr) {
      fn(block_row_ptr_, block_col_idx_, values_, rows_, cols_, b.data(), m, c.data(), ib0,
         ib1);
    } else {
      spmm_t_generic(block_row_ptr_, block_col_idx_, values_, rows_, cols_, block_rows_,
                     block_cols_, b.data(), m, c.data(), ib0, ib1);
    }
  };
  util::parallel_balanced(pool, block_row_ptr_.data(), mb, stored_values() * m, range);
  return c;
}

int64_t Bcsr::block_row_count() const {
  return block_rows_ > 0 ? (rows_ + block_rows_ - 1) / block_rows_ : 0;
}

double Bcsr::occupancy() const {
  const int64_t stored = stored_values();
  if (stored == 0) return 0.0;
  return static_cast<double>(nnz_) / static_cast<double>(stored);
}

double Bcsr::sparsity() const {
  const int64_t total = rows_ * cols_;
  if (total == 0) return 0.0;
  return 1.0 - static_cast<double>(nnz_) / static_cast<double>(total);
}

int64_t Bcsr::storage_bits(int64_t value_bits, int64_t index_bits) const {
  // Dense block values + one column index per block + block row pointers.
  return stored_values() * value_bits + block_count() * index_bits +
         (block_row_count() + 1) * index_bits;
}

}  // namespace ndsnn::sparse
