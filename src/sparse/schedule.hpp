// NDSNN schedules: Eq. 4 (per-layer sparsity ramp), Eq. 5 (death rate),
// Eqs. 6-9 (drop / grow counts per round).
#pragma once

#include <cstdint>
#include <stdexcept>

namespace ndsnn::sparse {

/// Eq. 4: cubic interpolation of layer sparsity from theta_i to theta_f.
///
///   theta_t = theta_f + (theta_i - theta_f) * (1 - (t - t0)/(n*dT))^3
///
/// `t` counts optimizer iterations; updates happen at t0, t0+dT, ...,
/// t0+n*dT. Exponent is configurable for the ablation (paper uses 3).
class SparsityRamp {
 public:
  SparsityRamp(double theta_initial, double theta_final, int64_t t0, int64_t delta_t,
               int64_t rounds, double exponent = 3.0);

  /// Sparsity at iteration t (clamped into [t0, t0 + rounds*delta_t]).
  [[nodiscard]] double at(int64_t t) const;

  /// Sparsity at round q (q = 0 is training start, q = rounds the end).
  [[nodiscard]] double at_round(int64_t q) const { return at(t0_ + q * delta_t_); }

  [[nodiscard]] double theta_initial() const { return theta_i_; }
  [[nodiscard]] double theta_final() const { return theta_f_; }
  [[nodiscard]] int64_t rounds() const { return rounds_; }
  [[nodiscard]] int64_t delta_t() const { return delta_t_; }

 private:
  double theta_i_, theta_f_;
  int64_t t0_, delta_t_, rounds_;
  double exponent_;
};

/// Eq. 5: cosine-annealed death (drop) rate:
///   d_t = d_min + 0.5 (d_0 - d_min)(1 + cos(pi t / (n dT)))
class DeathRateSchedule {
 public:
  DeathRateSchedule(double initial_rate, double min_rate, int64_t t0, int64_t delta_t,
                    int64_t rounds);

  [[nodiscard]] double at(int64_t t) const;
  [[nodiscard]] double at_round(int64_t q) const { return at(t0_ + q * delta_t_); }

  [[nodiscard]] double initial_rate() const { return d0_; }
  [[nodiscard]] double min_rate() const { return dmin_; }

 private:
  double d0_, dmin_;
  int64_t t0_, delta_t_, rounds_;
};

/// Eqs. 6-9 for one layer at round q.
struct DropGrowCounts {
  int64_t active_before = 0;  ///< N_pre  (Eq. 6)
  int64_t drop = 0;           ///< D_q    (Eq. 7)
  int64_t active_after = 0;   ///< N_post (Eq. 8)
  int64_t grow = 0;           ///< G_q    (Eq. 9)
};

/// Compute drop/grow for a layer with `layer_numel` weights, currently
/// `active_now` non-zeros, death rate `death_rate`, and Eq. 4 target
/// sparsity `theta_target` for this round. Grow count is clamped to
/// [0, drop] so non-zeros never increase (the NDSNN invariant) and to the
/// available inactive slots.
[[nodiscard]] DropGrowCounts drop_grow_counts(int64_t layer_numel, int64_t active_now,
                                              double death_rate, double theta_target);

}  // namespace ndsnn::sparse
