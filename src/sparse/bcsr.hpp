// Block Compressed Sparse Row storage for 2-D weight matrices.
//
// Structured-sparsity hardware (N:M patterns on tensor cores, row-block
// patterns on FPGA SNN accelerators like SyncNN [27]) executes sparse
// matrices as *dense micro-blocks* rather than individual nonzeros: one
// index addresses a fixed block_rows x block_cols tile whose values are
// stored dense, so the spmm inner loops run contiguous and vectorize.
// This is the execution format the runtime picks for N:M-projected and
// block-masked layers, complementing the element-wise sparse::Csr used
// for unstructured masks (where block occupancy would be too low).
#pragma once

#include <cstdint>
#include <vector>

#include "sparse/quant.hpp"
#include "sparse/structured.hpp"
#include "tensor/tensor.hpp"
#include "util/cpuinfo.hpp"
#include "util/thread_pool.hpp"

namespace ndsnn::sparse {

/// BCSR matrix: the block grid is ceil(rows/block_rows) x
/// ceil(cols/block_cols); a block is stored iff it contains at least one
/// surviving entry, and stored blocks keep all block_rows*block_cols
/// values dense (edge blocks are zero-padded). block_row_ptr has one
/// entry per block row + 1; block_col_idx has one entry per stored
/// block; values holds block_rows*block_cols floats per stored block in
/// row-major order.
/// Pattern structure of a weight tensor under a block grid, computed
/// without materializing block storage. This is what the runtime's
/// kernel-selection heuristic keys on; Bcsr::measure_weights and the
/// stats of a built Bcsr agree by construction (one scan, one set of
/// definitions) and a regression test pins it.
struct BcsrStats {
  int64_t total = 0;            ///< logical rows * cols
  int64_t nnz = 0;              ///< entries with |w| > threshold
  int64_t occupied_blocks = 0;  ///< blocks with at least one such entry
  int64_t block_size = 1;       ///< block_rows * block_cols

  /// Fraction of would-be-stored values that are nonzero (padded edge
  /// blocks count their full block_size, exactly like stored blocks).
  [[nodiscard]] double occupancy() const;
  /// Zero fraction of the logical matrix.
  [[nodiscard]] double sparsity() const;
};

class Bcsr {
 public:
  /// Compress a rank-2 tensor into block_rows x block_cols tiles.
  /// Threshold semantics match Csr::from_dense exactly: entries with
  /// |x| > threshold survive, entries at or below it are dropped (they
  /// become explicit zeros inside stored blocks, or the whole block is
  /// skipped when nothing in it survives).
  [[nodiscard]] static Bcsr from_dense(const tensor::Tensor& dense, int64_t block_rows,
                                       int64_t block_cols, float threshold = 0.0F);

  /// Masked-weight extractor mirroring Csr::from_weights: reshape any
  /// rank >= 2 tensor to [dim(0), numel/dim(0)] and compress it.
  [[nodiscard]] static Bcsr from_weights(const tensor::Tensor& weights, int64_t block_rows,
                                         int64_t block_cols, float threshold = 0.0F);

  /// Measure the block-pattern structure of a weight tensor (any rank
  /// >= 2, lowered like from_weights) without building the format —
  /// what CompiledNetwork's backend heuristic calls on every weight
  /// layer, including ones that end up dense or CSR.
  [[nodiscard]] static BcsrStats measure_weights(const tensor::Tensor& weights,
                                                 int64_t block_rows, int64_t block_cols,
                                                 float threshold = 0.0F);

  /// Project a copy of `dense` onto the N:M pattern and pack it with
  /// block_cols = pattern.m, so block columns line up with the N:M
  /// groups whenever cols % m == 0 and every stored block is at most
  /// n/m-occupied per row. `dense` itself is not modified.
  [[nodiscard]] static Bcsr from_nm(const tensor::Tensor& dense, const NmPattern& pattern,
                                    int64_t block_rows = 4, float threshold = 0.0F);

  /// Expand back to dense [rows, cols] (padding trimmed).
  [[nodiscard]] tensor::Tensor to_dense() const;

  /// Transposed copy (Aᵀ as BCSR with the block shape swapped to
  /// block_cols x block_rows). Surviving nonzeros are preserved exactly;
  /// explicit in-block zeros are re-derived from the transposed block
  /// grid. Built once at compile time by the runtime's event-driven ops.
  [[nodiscard]] Bcsr transposed() const;

  /// Event-driven gather over `this` = Wᵀ [in, out]: for each active
  /// input index j (ascending), acc[col] += x[j] * value across row j of
  /// the block storage, double products/adds in ascending column order.
  /// Explicit in-block zeros contribute exact no-ops, so float(acc)
  /// bitwise-matches Bcsr::spmm_t / Csr::spmm_t / matmul_nt on W.
  /// `acc` must hold cols() zeros on entry. `iacc` (cols() int32 slots)
  /// enables the binary-spike int32 fast path on uniform-scale
  /// quantised planes, mirroring Csr::spmv_gather. `tier` mirrors
  /// Csr::spmv_gather's: accepted and resolved for dispatch-surface
  /// uniformity, single body across tiers (serial scattered
  /// accumulation).
  void spmv_gather(const float* x, const int32_t* active, int64_t n_active,
                   double* acc, int32_t* iacc = nullptr,
                   util::simd::Tier tier = util::simd::Tier::kAuto) const;

  /// Scatter one row scaled by x: out[col * out_stride] += value * x for
  /// the stored entries of `row` (float adds, ascending column order).
  /// The event-driven conv path uses this with `this` = Wᵀ [C*K*K, F].
  /// `tier` as in spmv_gather (single body: strided scatter stores).
  void scatter_row(int64_t row, float x, float* out, int64_t out_stride,
                   util::simd::Tier tier = util::simd::Tier::kAuto) const;

  /// scatter_row restricted to columns in [col_begin, col_end) — the
  /// output-channel-strip form the parallel event conv path dispatches.
  void scatter_row_range(int64_t row, float x, float* out, int64_t out_stride,
                         int64_t col_begin, int64_t col_end) const;

  /// C[rows, n] = A * B for dense B [cols, n] (conv lowering). Per
  /// output element the contributions accumulate in ascending column
  /// order with float adds, exactly like Csr::spmm and the zero-skipping
  /// dense matmul, so all three backends agree bitwise. With a pool the
  /// block rows are partitioned into stored-block-balanced ranges
  /// (prefix sums over block_row_ptr); each output block row keeps its
  /// serial order, so results are lane-count independent.
  ///
  /// `tier` (resolved via util::simd::resolve): kScalar runs the
  /// runtime-bound generic worker; kVector and kAvx2 run the
  /// gcc-vector-extension strip-mined tile workers (the format's native
  /// vector shape — a dedicated intrinsic body would re-derive the same
  /// tiles). Every tier accumulates in the same ascending-column order,
  /// so results stay bitwise identical.
  [[nodiscard]] tensor::Tensor spmm(const tensor::Tensor& b,
                                    util::ThreadPool* pool = nullptr,
                                    util::simd::Tier tier = util::simd::Tier::kAuto) const;

  /// C[m, rows] = B * Aᵀ for dense B [m, cols] (linear layers). Double
  /// accumulator in ascending column order, bitwise-matching
  /// tensor::matmul_nt and Csr::spmm_t. Pool semantics mirror spmm.
  ///
  /// kAvx2 (fp32, batch m >= 8, enough stored values to amortize the
  /// B-transpose) runs the 8-lane batch-panel double-chain body; each
  /// lane's sequence equals the scalar worker's double chain exactly,
  /// so fp32 stays bitwise across tiers. kScalar pins the generic
  /// worker; kVector the unrolled template workers (same sums).
  [[nodiscard]] tensor::Tensor spmm_t(const tensor::Tensor& b,
                                      util::ThreadPool* pool = nullptr,
                                      util::simd::Tier tier = util::simd::Tier::kAuto) const;

  /// Quantise the value plane in place with one scale/zero-point per
  /// *stored block* (symmetric by default). Mirrors Csr::quantize: the
  /// fp32 block values are released, every kernel dispatches to its
  /// quantised variant (no bitwise contract, only the QuantPlane error
  /// bound), and transposed() must run before quantize. Returns the
  /// max-abs reconstruction error; no-op returning 0 for kFp32.
  /// `uniform_scale` shares one plane-wide scale across all stored
  /// blocks (the binary-spike gather fast path's precondition).
  float quantize(Precision precision, bool symmetric = true, bool uniform_scale = false);

  /// Inverse companion of quantize(), mirroring Csr::dequantize:
  /// materialize the dequantised fp32 block values and drop the plane.
  void dequantize();

  [[nodiscard]] bool quantized() const { return quant_.present(); }
  [[nodiscard]] Precision precision() const { return quant_.precision; }
  [[nodiscard]] const QuantPlane& quant() const { return quant_; }

  [[nodiscard]] int64_t rows() const { return rows_; }
  [[nodiscard]] int64_t cols() const { return cols_; }
  [[nodiscard]] int64_t block_rows() const { return block_rows_; }
  [[nodiscard]] int64_t block_cols() const { return block_cols_; }
  /// Number of block rows in the grid: ceil(rows / block_rows).
  [[nodiscard]] int64_t block_row_count() const;
  /// Stored (non-empty) blocks.
  [[nodiscard]] int64_t block_count() const {
    return static_cast<int64_t>(block_col_idx_.size());
  }
  /// Surviving nonzero entries (what Csr would store).
  [[nodiscard]] int64_t nnz() const { return nnz_; }
  /// Values the format actually stores: block_count * block_rows * block_cols.
  [[nodiscard]] int64_t stored_values() const {
    return block_count() * block_rows_ * block_cols_;
  }
  /// Fraction of stored values that are nonzero — the pattern-structure
  /// measure the runtime's kernel heuristic keys on (1.0 for a perfect
  /// block mask, ~n/m for an aligned N:M pattern, low for unstructured).
  [[nodiscard]] double occupancy() const;
  /// Zero fraction of the logical [rows, cols] matrix.
  [[nodiscard]] double sparsity() const;

  /// Storage bits with `value_bits` per stored value and `index_bits`
  /// per block column index / block row pointer (Sec. III-D accounting;
  /// note BCSR pays for in-block zeros but needs ~1/(block_rows*
  /// block_cols) as many indices as CSR).
  [[nodiscard]] int64_t storage_bits(int64_t value_bits, int64_t index_bits) const;

  /// Bytes the structure actually occupies (indices + fp32 values or
  /// the quantised plane), mirroring Csr::memory_bytes.
  [[nodiscard]] int64_t memory_bytes() const;

  [[nodiscard]] const std::vector<int64_t>& block_row_ptr() const { return block_row_ptr_; }
  [[nodiscard]] const std::vector<int32_t>& block_col_idx() const { return block_col_idx_; }
  [[nodiscard]] const std::vector<float>& values() const { return values_; }

 private:
  int64_t rows_ = 0, cols_ = 0;
  int64_t block_rows_ = 1, block_cols_ = 1;
  int64_t nnz_ = 0;
  std::vector<int64_t> block_row_ptr_;
  std::vector<int32_t> block_col_idx_;
  std::vector<float> values_;
  QuantPlane quant_;
};

}  // namespace ndsnn::sparse
