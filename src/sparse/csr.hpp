// Compressed Sparse Row storage for 2-D weight matrices (Sec. III-D).
//
// Used by the memory-footprint analysis and by the edge-deployment
// example to export trained sparse models.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace ndsnn::sparse {

/// CSR matrix: row_ptr has rows+1 entries; col_idx/values have nnz each.
class Csr {
 public:
  /// Compress a rank-2 tensor, keeping entries with |x| > 0.
  [[nodiscard]] static Csr from_dense(const tensor::Tensor& dense);

  /// Expand back to dense [rows, cols].
  [[nodiscard]] tensor::Tensor to_dense() const;

  /// y[rows] = A * x[cols] (sparse mat-vec).
  [[nodiscard]] std::vector<float> matvec(const std::vector<float>& x) const;

  [[nodiscard]] int64_t rows() const { return rows_; }
  [[nodiscard]] int64_t cols() const { return cols_; }
  [[nodiscard]] int64_t nnz() const { return static_cast<int64_t>(values_.size()); }
  [[nodiscard]] double sparsity() const;

  /// Storage bytes with `value_bits` per value and `index_bits` per
  /// column index / row pointer (Sec. III-D accounting).
  [[nodiscard]] int64_t storage_bits(int64_t value_bits, int64_t index_bits) const;

  [[nodiscard]] const std::vector<int64_t>& row_ptr() const { return row_ptr_; }
  [[nodiscard]] const std::vector<int32_t>& col_idx() const { return col_idx_; }
  [[nodiscard]] const std::vector<float>& values() const { return values_; }

 private:
  int64_t rows_ = 0, cols_ = 0;
  std::vector<int64_t> row_ptr_;
  std::vector<int32_t> col_idx_;
  std::vector<float> values_;
};

}  // namespace ndsnn::sparse
