// Compressed Sparse Row storage for 2-D weight matrices (Sec. III-D).
//
// Used by the memory-footprint analysis, by the edge-deployment example
// to export trained sparse models, and by the inference runtime
// (src/runtime/) as the execution format for pruned weight layers: the
// spmm kernels below are what make the trained sparsity pay off at
// forward time instead of only in the analytical cost models.
#pragma once

#include <cstdint>
#include <vector>

#include "sparse/quant.hpp"
#include "tensor/tensor.hpp"
#include "util/cpuinfo.hpp"
#include "util/thread_pool.hpp"

namespace ndsnn::sparse {

/// CSR matrix: row_ptr has rows+1 entries; col_idx/values have nnz each.
class Csr {
 public:
  /// Compress a rank-2 tensor, keeping entries with |x| > threshold.
  /// The default threshold 0 keeps everything that is not exactly zero;
  /// a positive threshold deliberately drops tiny-but-nonzero weights
  /// (e.g. numerically dirty mask-pruned entries).
  [[nodiscard]] static Csr from_dense(const tensor::Tensor& dense, float threshold = 0.0F);

  /// Masked-weight extractor: reshape a weight tensor of any rank to
  /// [dim(0), numel/dim(0)] (conv [F, C, KH, KW] -> [F, C*KH*KW], linear
  /// [out, in] unchanged) and compress it. This is the uniform path from
  /// a trained, mask-zeroed parameter tensor to an executable kernel.
  [[nodiscard]] static Csr from_weights(const tensor::Tensor& weights, float threshold = 0.0F);

  /// Expand back to dense [rows, cols].
  [[nodiscard]] tensor::Tensor to_dense() const;

  /// Transposed copy (Aᵀ as CSR, rows/cols swapped). Within each
  /// transposed row the entries stay in ascending column order. The
  /// runtime's event-driven ops build this once at compile time so a
  /// sparse *input* index selects one contiguous weight row.
  [[nodiscard]] Csr transposed() const;

  /// Event-driven gather over `this` = Wᵀ [in, out]: for each active
  /// input index j (ascending, a subset of rows with x[j] != 0), do
  /// acc[col] += x[j] * value for every nonzero of row j, with double
  /// products/adds. Per output element the contributions accumulate in
  /// ascending j order — the same sequence Csr::spmm_t runs on W
  /// restricted to the nonzero x[j], and skipped zero terms are exact
  /// no-ops on the accumulator — so float(acc) is bitwise identical to
  /// the dense-activation result. `acc` must hold cols() zeros on entry.
  ///
  /// `iacc` (cols() int32 slots, any contents — the kernel zeroes them)
  /// enables the binary-spike fast path on uniform-scale quantised
  /// planes: when every active x[j] == 1.0 the raw codes are summed in
  /// int32 and the shared scale applied once per output, removing the
  /// per-active-input dequantise multiply. Null, non-binary input, or a
  /// per-row-scaled plane all fall back to the general path.
  ///
  /// `tier` is accepted for dispatch-surface uniformity and resolved
  /// like spmm's, but every tier currently runs the same body: the
  /// gather is a serial scattered-accumulate whose bitwise contract
  /// (one double chain per output in ascending j order) leaves no
  /// reassociation for wider lanes to exploit.
  void spmv_gather(const float* x, const int32_t* active, int64_t n_active,
                   double* acc, int32_t* iacc = nullptr,
                   util::simd::Tier tier = util::simd::Tier::kAuto) const;

  /// Scatter one row scaled by x: out[col * out_stride] += value * x for
  /// every nonzero of `row`. Float adds, ascending column order. The
  /// event-driven conv path uses this with `this` = Wᵀ [C*K*K, F],
  /// row = patch column, out_stride = OH*OW. `tier` mirrors
  /// spmv_gather's: accepted, resolved, single body (strided scatter
  /// stores have no AVX2 win without scatter instructions).
  void scatter_row(int64_t row, float x, float* out, int64_t out_stride,
                   util::simd::Tier tier = util::simd::Tier::kAuto) const;

  /// scatter_row restricted to columns in [col_begin, col_end): the
  /// ranged form the event-driven conv path uses to partition work by
  /// output channel — each chunk owns a disjoint channel strip, and
  /// within a strip the per-output accumulation order is unchanged.
  void scatter_row_range(int64_t row, float x, float* out, int64_t out_stride,
                         int64_t col_begin, int64_t col_end) const;

  /// y[rows] = A * x[cols] (sparse mat-vec).
  [[nodiscard]] std::vector<float> matvec(const std::vector<float>& x) const;

  /// C[rows, n] = A * B for dense B [cols, n] (the "N" variant; conv
  /// lowering: W_csr[F, CKK] * cols[CKK, L]). With a pool, the rows are
  /// partitioned into nnz-balanced ranges (prefix sums over row_ptr) and
  /// computed in parallel; each output row keeps its serial accumulation
  /// order, so results are bitwise lane-count-independent. Work below
  /// util::kMinParallelWork stays serial.
  ///
  /// `tier` selects the kernel tier (resolved via util::simd::resolve;
  /// kAuto follows the process-wide active tier). The kAvx2 fp32 body
  /// keeps the C row in registers across 4 fused axpys with explicit
  /// mul+add steps, so per output element the rounding sequence — and
  /// hence the result — is bitwise identical to the scalar body.
  [[nodiscard]] tensor::Tensor spmm(const tensor::Tensor& b,
                                    util::ThreadPool* pool = nullptr,
                                    util::simd::Tier tier = util::simd::Tier::kAuto) const;

  /// C[m, rows] = B * Aᵀ for dense B [m, cols] (the "T" variant; linear
  /// layers: x[M, in] * Wᵀ with W stored CSR [out, in]). Pool semantics
  /// mirror spmm: the CSR rows (columns of C) are nnz-balance
  /// partitioned, each C element still accumulates serially.
  ///
  /// At kAvx2 (batch m >= 8 and enough nonzeros to amortize it) the
  /// driver first materializes bt = Bᵀ so one broadcast weight serves 8
  /// contiguous batch lanes; fp32 runs two 4-wide double chains whose
  /// per-lane sequence equals the scalar double chain exactly (a
  /// float*float product is exact in double), so fp32 stays bitwise
  /// across tiers. Symmetric int8/int4 planes take FMA bodies that read
  /// per-row or group scales natively (quantised execution carries only
  /// the QuantPlane error contract, not bitwise equality).
  [[nodiscard]] tensor::Tensor spmm_t(const tensor::Tensor& b,
                                      util::ThreadPool* pool = nullptr,
                                      util::simd::Tier tier = util::simd::Tier::kAuto) const;

  /// Quantise the value plane in place: int8 or packed-int4 codes with
  /// one scale/zero-point per row (symmetric by default, so all
  /// zero-points are 0). The fp32 value array is released — the memory
  /// win is real, not just accounted — and every kernel above
  /// transparently dispatches to its quantised variant, which
  /// dequantises once per output (or once per active input on the
  /// gather path) instead of once per term. Quantised kernels carry no
  /// bitwise contract: they are free to reassociate (multi-accumulator
  /// float sums) and promise only the QuantPlane error bound
  /// (sum_k (scale_k / 2) * |x_k| per output; see sparse/quant.hpp).
  /// Returns the max-abs reconstruction error over all values. Throws
  /// std::logic_error when already quantised; no-op returning 0 for
  /// kFp32. transposed() must be called *before* quantize (the runtime
  /// quantises the final execution-orientation structure).
  /// `uniform_scale` shares one plane-wide scale across all rows (see
  /// sparse::quantize_grouped) — what the runtime requests for
  /// event-path gather structures so binary spike batches can take the
  /// int32 fast path in spmv_gather.
  /// `group_size` > 0 replaces the per-row grouping with fixed-size
  /// runs of that many codes over the value array (power of two, may
  /// straddle row boundaries; see QuantPlane::group_size) — finer
  /// scales that localize int4's error. Requires symmetric mode and is
  /// mutually exclusive with uniform_scale.
  float quantize(Precision precision, bool symmetric = true, bool uniform_scale = false,
                 int64_t group_size = 0);

  /// Inverse companion of quantize(): materialize the *dequantised*
  /// fp32 values and drop the plane, so the bitwise fp32 kernels above
  /// execute the exact effective weights of the quantised plane
  /// (QAT-style fake-quant evaluation; the differential harness builds
  /// its reference plans this way). No-op when not quantised.
  void dequantize();

  [[nodiscard]] bool quantized() const { return quant_.present(); }
  [[nodiscard]] Precision precision() const { return quant_.precision; }
  [[nodiscard]] const QuantPlane& quant() const { return quant_; }

  [[nodiscard]] int64_t rows() const { return rows_; }
  [[nodiscard]] int64_t cols() const { return cols_; }
  [[nodiscard]] int64_t nnz() const { return static_cast<int64_t>(col_idx_.size()); }
  [[nodiscard]] double sparsity() const;

  /// Storage bytes with `value_bits` per value and `index_bits` per
  /// column index / row pointer (Sec. III-D accounting).
  [[nodiscard]] int64_t storage_bits(int64_t value_bits, int64_t index_bits) const;

  /// Bytes this structure actually occupies right now: indices + row
  /// pointers + the fp32 values or the quantised plane (codes + scales
  /// + zero-points). The runtime's per-op bytes-touched reporting.
  [[nodiscard]] int64_t memory_bytes() const;

  [[nodiscard]] const std::vector<int64_t>& row_ptr() const { return row_ptr_; }
  [[nodiscard]] const std::vector<int32_t>& col_idx() const { return col_idx_; }
  [[nodiscard]] const std::vector<float>& values() const { return values_; }

 private:
  /// Row-range bodies of spmm/spmm_t (fp32 and quantised): the units the
  /// pool dispatches. Each runs rows [r0, r1) exactly like the serial
  /// kernel.
  void spmm_range(int64_t r0, int64_t r1, const float* bp, int64_t n, float* cp) const;
  void spmm_t_range(int64_t r0, int64_t r1, const float* bp, int64_t m, float* cp) const;

  int64_t rows_ = 0, cols_ = 0;
  std::vector<int64_t> row_ptr_;
  std::vector<int32_t> col_idx_;
  std::vector<float> values_;
  QuantPlane quant_;
};

}  // namespace ndsnn::sparse
