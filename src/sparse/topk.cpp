#include "sparse/topk.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace ndsnn::sparse {

namespace {
void check_k(const std::vector<int64_t>& candidates, int64_t k, const char* who) {
  if (k < 0 || k > static_cast<int64_t>(candidates.size())) {
    throw std::invalid_argument(std::string(who) + ": k=" + std::to_string(k) +
                                " out of range for " + std::to_string(candidates.size()) +
                                " candidates");
  }
}
}  // namespace

std::vector<int64_t> argdrop_smallest_magnitude(const tensor::Tensor& values,
                                                const std::vector<int64_t>& candidates,
                                                int64_t k) {
  check_k(candidates, k, "argdrop_smallest_magnitude");
  std::vector<int64_t> sel = candidates;
  const float* v = values.data();
  auto cmp = [v](int64_t a, int64_t b) {
    const float ma = std::fabs(v[a]), mb = std::fabs(v[b]);
    if (ma != mb) return ma < mb;
    return a < b;
  };
  std::nth_element(sel.begin(), sel.begin() + k, sel.end(), cmp);
  sel.resize(static_cast<std::size_t>(k));
  std::sort(sel.begin(), sel.end());
  return sel;
}

std::vector<int64_t> arggrow_largest_magnitude(const tensor::Tensor& values,
                                               const std::vector<int64_t>& candidates,
                                               int64_t k) {
  check_k(candidates, k, "arggrow_largest_magnitude");
  std::vector<int64_t> sel = candidates;
  const float* v = values.data();
  auto cmp = [v](int64_t a, int64_t b) {
    const float ma = std::fabs(v[a]), mb = std::fabs(v[b]);
    if (ma != mb) return ma > mb;
    return a < b;
  };
  std::nth_element(sel.begin(), sel.begin() + k, sel.end(), cmp);
  sel.resize(static_cast<std::size_t>(k));
  std::sort(sel.begin(), sel.end());
  return sel;
}

float magnitude_threshold(const tensor::Tensor& values, int64_t keep) {
  const int64_t n = values.numel();
  if (keep < 0 || keep > n) {
    throw std::invalid_argument("magnitude_threshold: keep out of range");
  }
  if (keep == 0) return std::numeric_limits<float>::infinity();
  std::vector<float> mags(static_cast<std::size_t>(n));
  const float* v = values.data();
  for (int64_t i = 0; i < n; ++i) mags[static_cast<std::size_t>(i)] = std::fabs(v[i]);
  std::nth_element(mags.begin(), mags.begin() + (n - keep), mags.end());
  return mags[static_cast<std::size_t>(n - keep)];
}

}  // namespace ndsnn::sparse
