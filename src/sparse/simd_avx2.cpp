// AVX2(+FMA) kernel bodies for the kAvx2 dispatch tier. See
// simd_kernels.hpp for the bitwise contract each body carries and
// cpuinfo.hpp for how a body gets selected.
//
// Build note: every function is individually annotated
// __attribute__((target("avx2,fma"))) so this TU compiles under a
// generic -march (the default local build) and the resulting objects
// are safe to link anywhere — the instructions only execute after
// cpuid has proven them legal. The fp32 bodies use explicit
// _mm256_mul_* / _mm256_add_* pairs, never _mm256_fmadd_*: the scalar
// references round between multiply and add (the build pins
// -ffp-contract=off), and one fused step would break the cross-tier
// bitwise guarantee. The quantised bodies use FMA freely.
#include "sparse/simd_kernels.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define NDSNN_HAVE_AVX2_BODIES 1
#include <immintrin.h>
#endif

namespace ndsnn::sparse::simd {

bool built_with_avx2() {
#ifdef NDSNN_HAVE_AVX2_BODIES
  return true;
#else
  return false;
#endif
}

void transpose_f32(const float* in, int64_t rows, int64_t cols, float* out,
                   int64_t c0, int64_t c1) {
  for (int64_t c = c0; c < c1; ++c) {
    float* orow = out + c * rows;
    const float* ip = in + c;
    for (int64_t r = 0; r < rows; ++r) orow[r] = ip[r * cols];
  }
}

#ifdef NDSNN_HAVE_AVX2_BODIES

namespace {

/// One fused axpy pass: crow[j] += vs[0]*brows[0][j]; ...; += vs[cnt-1]*
/// brows[cnt-1][j] — each term a separate rounded mul+add, so per
/// element the sequence equals `cnt` consecutive scalar axpys.
__attribute__((target("avx2,fma"))) void axpy_group(float* crow, int64_t n,
                                                    const float* vs,
                                                    const float* const* brows,
                                                    int cnt) {
  const int64_t n8 = n & ~int64_t{7};
  int64_t j = 0;
  for (; j < n8; j += 8) {
    __m256 c = _mm256_loadu_ps(crow + j);
    for (int t = 0; t < cnt; ++t) {
      c = _mm256_add_ps(
          c, _mm256_mul_ps(_mm256_set1_ps(vs[t]), _mm256_loadu_ps(brows[t] + j)));
    }
    _mm256_storeu_ps(crow + j, c);
  }
  for (; j < n; ++j) {
    float cj = crow[j];
    for (int t = 0; t < cnt; ++t) cj += vs[t] * brows[t][j];
    crow[j] = cj;
  }
}

/// Decode one packed int4 code (two's-complement nibble), identical to
/// the scalar kernels' decode.
__attribute__((target("avx2,fma"))) inline float decode_i4(const uint8_t* q4,
                                                           int64_t k) {
  const auto byte = static_cast<int8_t>(q4[k >> 1]);
  return (k & 1) != 0
             ? static_cast<float>(byte >> 4)
             : static_cast<float>(static_cast<int8_t>(static_cast<uint8_t>(byte) << 4) >> 4);
}

}  // namespace

__attribute__((target("avx2,fma"))) void csr_spmm_f32_avx2(
    const int64_t* row_ptr, const int32_t* col_idx, const float* values,
    int64_t r0, int64_t r1, const float* bp, int64_t n, float* cp) {
  const float* brows[4];
  float vs[4];
  for (int64_t r = r0; r < r1; ++r) {
    const int64_t k1 = row_ptr[r + 1];
    float* crow = cp + r * n;
    for (int64_t k = row_ptr[r]; k < k1; k += 4) {
      const int cnt = static_cast<int>(k1 - k < 4 ? k1 - k : 4);
      for (int t = 0; t < cnt; ++t) {
        vs[t] = values[k + t];
        brows[t] = bp + static_cast<int64_t>(col_idx[k + t]) * n;
      }
      axpy_group(crow, n, vs, brows, cnt);
    }
  }
}

__attribute__((target("avx2,fma"))) void csr_spmm_t_f32_avx2(
    const int64_t* row_ptr, const int32_t* col_idx, const float* values,
    int64_t r0, int64_t r1, const float* bt, int64_t m, int64_t out_stride,
    float* cp) {
  const int64_t m8 = m & ~int64_t{7};
  for (int64_t i = 0; i < m8; i += 8) {
    for (int64_t r = r0; r < r1; ++r) {
      // Two independent 4-wide double chains: per output lane the adds
      // still run in ascending-k order (lane t only ever meets its own
      // chain), and a float*float product is exact in double, so each
      // lane reproduces the scalar double chain bit for bit.
      __m256d acc_lo = _mm256_setzero_pd();
      __m256d acc_hi = _mm256_setzero_pd();
      const int64_t k1 = row_ptr[r + 1];
      for (int64_t k = row_ptr[r]; k < k1; ++k) {
        const float* p = bt + static_cast<int64_t>(col_idx[k]) * m + i;
        const __m256d v = _mm256_set1_pd(static_cast<double>(values[k]));
        acc_lo = _mm256_add_pd(acc_lo,
                               _mm256_mul_pd(v, _mm256_cvtps_pd(_mm_loadu_ps(p))));
        acc_hi = _mm256_add_pd(
            acc_hi, _mm256_mul_pd(v, _mm256_cvtps_pd(_mm_loadu_ps(p + 4))));
      }
      float out[8];
      _mm_storeu_ps(out, _mm256_cvtpd_ps(acc_lo));
      _mm_storeu_ps(out + 4, _mm256_cvtpd_ps(acc_hi));
      for (int t = 0; t < 8; ++t) cp[(i + t) * out_stride + r] = out[t];
    }
  }
  for (int64_t i = m8; i < m; ++i) {  // batch tail: the scalar chain
    for (int64_t r = r0; r < r1; ++r) {
      double acc = 0.0;
      const int64_t k1 = row_ptr[r + 1];
      for (int64_t k = row_ptr[r]; k < k1; ++k) {
        acc += static_cast<double>(values[k]) *
               static_cast<double>(bt[static_cast<int64_t>(col_idx[k]) * m + i]);
      }
      cp[i * out_stride + r] = static_cast<float>(acc);
    }
  }
}

__attribute__((target("avx2,fma"))) void csr_spmm_t_i8_avx2(
    const int64_t* row_ptr, const int32_t* col_idx, const int8_t* q8,
    const float* scale, int group_shift, int64_t r0, int64_t r1,
    const float* bt, int64_t m, int64_t out_stride, float* cp) {
  const int64_t m8 = m & ~int64_t{7};
  for (int64_t i = 0; i < m8; i += 8) {
    for (int64_t r = r0; r < r1; ++r) {
      // No bitwise contract: two reassociated FMA chains over even/odd
      // nonzeros hide the FMA latency.
      __m256 acc_a = _mm256_setzero_ps();
      __m256 acc_b = _mm256_setzero_ps();
      const int64_t k1 = row_ptr[r + 1];
      int64_t k = row_ptr[r];
      for (; k + 2 <= k1; k += 2) {
        float c0 = static_cast<float>(q8[k]);
        float c1 = static_cast<float>(q8[k + 1]);
        if (group_shift >= 0) {
          c0 *= scale[k >> group_shift];
          c1 *= scale[(k + 1) >> group_shift];
        }
        acc_a = _mm256_fmadd_ps(
            _mm256_set1_ps(c0),
            _mm256_loadu_ps(bt + static_cast<int64_t>(col_idx[k]) * m + i), acc_a);
        acc_b = _mm256_fmadd_ps(
            _mm256_set1_ps(c1),
            _mm256_loadu_ps(bt + static_cast<int64_t>(col_idx[k + 1]) * m + i),
            acc_b);
      }
      if (k < k1) {
        float c0 = static_cast<float>(q8[k]);
        if (group_shift >= 0) c0 *= scale[k >> group_shift];
        acc_a = _mm256_fmadd_ps(
            _mm256_set1_ps(c0),
            _mm256_loadu_ps(bt + static_cast<int64_t>(col_idx[k]) * m + i), acc_a);
      }
      __m256 acc = _mm256_add_ps(acc_a, acc_b);
      if (group_shift < 0) acc = _mm256_mul_ps(acc, _mm256_set1_ps(scale[r]));
      float out[8];
      _mm256_storeu_ps(out, acc);
      for (int t = 0; t < 8; ++t) cp[(i + t) * out_stride + r] = out[t];
    }
  }
  for (int64_t i = m8; i < m; ++i) {
    for (int64_t r = r0; r < r1; ++r) {
      float acc = 0.0F;
      const int64_t k1 = row_ptr[r + 1];
      for (int64_t k = row_ptr[r]; k < k1; ++k) {
        float c0 = static_cast<float>(q8[k]);
        if (group_shift >= 0) c0 *= scale[k >> group_shift];
        acc += c0 * bt[static_cast<int64_t>(col_idx[k]) * m + i];
      }
      if (group_shift < 0) acc *= scale[r];
      cp[i * out_stride + r] = acc;
    }
  }
}

__attribute__((target("avx2,fma"))) void csr_spmm_t_i4_avx2(
    const int64_t* row_ptr, const int32_t* col_idx, const uint8_t* q4,
    const float* scale, int group_shift, int64_t r0, int64_t r1,
    const float* bt, int64_t m, int64_t out_stride, float* cp) {
  const int64_t m8 = m & ~int64_t{7};
  for (int64_t i = 0; i < m8; i += 8) {
    for (int64_t r = r0; r < r1; ++r) {
      __m256 acc_a = _mm256_setzero_ps();
      __m256 acc_b = _mm256_setzero_ps();
      const int64_t k1 = row_ptr[r + 1];
      int64_t k = row_ptr[r];
      for (; k + 2 <= k1; k += 2) {
        float c0 = decode_i4(q4, k);
        float c1 = decode_i4(q4, k + 1);
        if (group_shift >= 0) {
          c0 *= scale[k >> group_shift];
          c1 *= scale[(k + 1) >> group_shift];
        }
        acc_a = _mm256_fmadd_ps(
            _mm256_set1_ps(c0),
            _mm256_loadu_ps(bt + static_cast<int64_t>(col_idx[k]) * m + i), acc_a);
        acc_b = _mm256_fmadd_ps(
            _mm256_set1_ps(c1),
            _mm256_loadu_ps(bt + static_cast<int64_t>(col_idx[k + 1]) * m + i),
            acc_b);
      }
      if (k < k1) {
        float c0 = decode_i4(q4, k);
        if (group_shift >= 0) c0 *= scale[k >> group_shift];
        acc_a = _mm256_fmadd_ps(
            _mm256_set1_ps(c0),
            _mm256_loadu_ps(bt + static_cast<int64_t>(col_idx[k]) * m + i), acc_a);
      }
      __m256 acc = _mm256_add_ps(acc_a, acc_b);
      if (group_shift < 0) acc = _mm256_mul_ps(acc, _mm256_set1_ps(scale[r]));
      float out[8];
      _mm256_storeu_ps(out, acc);
      for (int t = 0; t < 8; ++t) cp[(i + t) * out_stride + r] = out[t];
    }
  }
  for (int64_t i = m8; i < m; ++i) {
    for (int64_t r = r0; r < r1; ++r) {
      float acc = 0.0F;
      const int64_t k1 = row_ptr[r + 1];
      for (int64_t k = row_ptr[r]; k < k1; ++k) {
        float c0 = decode_i4(q4, k);
        if (group_shift >= 0) c0 *= scale[k >> group_shift];
        acc += c0 * bt[static_cast<int64_t>(col_idx[k]) * m + i];
      }
      if (group_shift < 0) acc *= scale[r];
      cp[i * out_stride + r] = acc;
    }
  }
}

__attribute__((target("avx2,fma"))) void bcsr_spmm_t_f32_avx2(
    const int64_t* block_row_ptr, const int32_t* block_col_idx,
    const float* values, int64_t rows, int64_t cols, int64_t br, int64_t bc,
    const float* bt, int64_t m, float* cp, int64_t ib0, int64_t ib1) {
  const int64_t bs = br * bc;
  const int64_t m8 = m & ~int64_t{7};
  for (int64_t i = 0; i < m8; i += 8) {
    for (int64_t ib = ib0; ib < ib1; ++ib) {
      const int64_t row0 = ib * br;
      const int64_t r_lim = rows - row0 < br ? rows - row0 : br;
      const int64_t k0 = block_row_ptr[ib];
      const int64_t k1 = block_row_ptr[ib + 1];
      for (int64_t r = 0; r < r_lim; ++r) {
        __m256d acc_lo = _mm256_setzero_pd();
        __m256d acc_hi = _mm256_setzero_pd();
        for (int64_t k = k0; k < k1; ++k) {
          const int64_t col0 = static_cast<int64_t>(block_col_idx[k]) * bc;
          const int64_t c_lim = cols - col0 < bc ? cols - col0 : bc;
          const float* vrow = values + k * bs + r * bc;
          for (int64_t cc = 0; cc < c_lim; ++cc) {
            const float* p = bt + (col0 + cc) * m + i;
            const __m256d v = _mm256_set1_pd(static_cast<double>(vrow[cc]));
            acc_lo = _mm256_add_pd(
                acc_lo, _mm256_mul_pd(v, _mm256_cvtps_pd(_mm_loadu_ps(p))));
            acc_hi = _mm256_add_pd(
                acc_hi, _mm256_mul_pd(v, _mm256_cvtps_pd(_mm_loadu_ps(p + 4))));
          }
        }
        float out[8];
        _mm_storeu_ps(out, _mm256_cvtpd_ps(acc_lo));
        _mm_storeu_ps(out + 4, _mm256_cvtpd_ps(acc_hi));
        for (int t = 0; t < 8; ++t) cp[(i + t) * rows + row0 + r] = out[t];
      }
    }
  }
  for (int64_t i = m8; i < m; ++i) {
    for (int64_t ib = ib0; ib < ib1; ++ib) {
      const int64_t row0 = ib * br;
      const int64_t r_lim = rows - row0 < br ? rows - row0 : br;
      const int64_t k0 = block_row_ptr[ib];
      const int64_t k1 = block_row_ptr[ib + 1];
      for (int64_t r = 0; r < r_lim; ++r) {
        double acc = 0.0;
        for (int64_t k = k0; k < k1; ++k) {
          const int64_t col0 = static_cast<int64_t>(block_col_idx[k]) * bc;
          const int64_t c_lim = cols - col0 < bc ? cols - col0 : bc;
          const float* vrow = values + k * bs + r * bc;
          for (int64_t cc = 0; cc < c_lim; ++cc) {
            acc += static_cast<double>(vrow[cc]) *
                   static_cast<double>(bt[(col0 + cc) * m + i]);
          }
        }
        cp[i * rows + row0 + r] = static_cast<float>(acc);
      }
    }
  }
}

__attribute__((target("avx2,fma"))) void matmul_nt_f32_avx2(
    const float* a, const float* bt, int64_t i0, int64_t i1, int64_t k,
    int64_t n, float* c) {
  const int64_t n8 = n & ~int64_t{7};
  for (int64_t i = i0; i < i1; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    int64_t j = 0;
    for (; j < n8; j += 8) {
      __m256d acc_lo = _mm256_setzero_pd();
      __m256d acc_hi = _mm256_setzero_pd();
      for (int64_t kk = 0; kk < k; ++kk) {
        const float* p = bt + kk * n + j;
        const __m256d v = _mm256_set1_pd(static_cast<double>(arow[kk]));
        acc_lo = _mm256_add_pd(acc_lo,
                               _mm256_mul_pd(v, _mm256_cvtps_pd(_mm_loadu_ps(p))));
        acc_hi = _mm256_add_pd(
            acc_hi, _mm256_mul_pd(v, _mm256_cvtps_pd(_mm_loadu_ps(p + 4))));
      }
      const __m256 sum = _mm256_insertf128_ps(
          _mm256_castps128_ps256(_mm256_cvtpd_ps(acc_lo)), _mm256_cvtpd_ps(acc_hi),
          1);
      _mm256_storeu_ps(crow + j, _mm256_add_ps(_mm256_loadu_ps(crow + j), sum));
    }
    for (; j < n; ++j) {
      double acc = 0.0;
      for (int64_t kk = 0; kk < k; ++kk) {
        acc += static_cast<double>(arow[kk]) * static_cast<double>(bt[kk * n + j]);
      }
      crow[j] += static_cast<float>(acc);
    }
  }
}

__attribute__((target("avx2,fma"))) void matmul_f32_avx2(const float* a,
                                                         const float* b,
                                                         int64_t i0, int64_t i1,
                                                         int64_t k, int64_t n,
                                                         float* c) {
  const float* brows[4];
  float vs[4];
  for (int64_t i = i0; i < i1; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    int cnt = 0;
    for (int64_t kk = 0; kk < k; ++kk) {
      const float aval = arow[kk];
      if (aval == 0.0F) continue;  // pruned entries stay exact no-ops
      vs[cnt] = aval;
      brows[cnt] = b + kk * n;
      if (++cnt == 4) {
        axpy_group(crow, n, vs, brows, 4);
        cnt = 0;
      }
    }
    if (cnt != 0) axpy_group(crow, n, vs, brows, cnt);
  }
}

#else  // !NDSNN_HAVE_AVX2_BODIES — stubs; dispatch never reaches them
       // because built_with_avx2() is false and detected() caps below
       // kAvx2 off x86.

void csr_spmm_f32_avx2(const int64_t*, const int32_t*, const float*, int64_t,
                       int64_t, const float*, int64_t, float*) {}
void csr_spmm_t_f32_avx2(const int64_t*, const int32_t*, const float*, int64_t,
                         int64_t, const float*, int64_t, int64_t, float*) {}
void csr_spmm_t_i8_avx2(const int64_t*, const int32_t*, const int8_t*,
                        const float*, int, int64_t, int64_t, const float*,
                        int64_t, int64_t, float*) {}
void csr_spmm_t_i4_avx2(const int64_t*, const int32_t*, const uint8_t*,
                        const float*, int, int64_t, int64_t, const float*,
                        int64_t, int64_t, float*) {}
void bcsr_spmm_t_f32_avx2(const int64_t*, const int32_t*, const float*, int64_t,
                          int64_t, int64_t, int64_t, const float*, int64_t,
                          float*, int64_t, int64_t) {}
void matmul_nt_f32_avx2(const float*, const float*, int64_t, int64_t, int64_t,
                        int64_t, float*) {}
void matmul_f32_avx2(const float*, const float*, int64_t, int64_t, int64_t,
                     int64_t, float*) {}

#endif

}  // namespace ndsnn::sparse::simd
