#include "sparse/csr.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sparse/simd_kernels.hpp"

namespace ndsnn::sparse {

float Csr::quantize(Precision precision, bool symmetric, bool uniform_scale,
                    int64_t group_size) {
  if (precision == Precision::kFp32) return 0.0F;
  if (quant_.present()) throw std::logic_error("Csr::quantize: already quantised");
  float err = 0.0F;
  if (group_size > 0) {
    if (!symmetric || uniform_scale) {
      throw std::invalid_argument(
          "Csr::quantize: group_size requires symmetric, non-uniform quantisation");
    }
    if ((group_size & (group_size - 1)) != 0) {
      throw std::invalid_argument("Csr::quantize: group_size must be a power of two");
    }
    // Fixed-size groups over the value array, synthesized as a group_ptr
    // so the per-row machinery is reused verbatim (last group may be
    // short).
    std::vector<int64_t> group_ptr;
    group_ptr.reserve(static_cast<std::size_t>(nnz() / group_size) + 2);
    for (int64_t k = 0; k < nnz(); k += group_size) group_ptr.push_back(k);
    group_ptr.push_back(nnz());
    quant_ = quantize_grouped(values_.data(), group_ptr.data(),
                              static_cast<int64_t>(group_ptr.size()) - 1, precision,
                              symmetric, &err, false);
    quant_.group_size = group_size;
  } else {
    quant_ = quantize_grouped(values_.data(), row_ptr_.data(), rows_, precision, symmetric,
                              &err, uniform_scale);
  }
  values_.clear();
  values_.shrink_to_fit();
  return err;
}

void Csr::dequantize() {
  if (!quant_.present()) return;
  values_.resize(col_idx_.size());
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t k = row_ptr_[static_cast<std::size_t>(r)];
         k < row_ptr_[static_cast<std::size_t>(r) + 1]; ++k) {
      values_[static_cast<std::size_t>(k)] = quant_.dequant(r, k);
    }
  }
  quant_ = QuantPlane{};
}

int64_t Csr::memory_bytes() const {
  const int64_t indices = static_cast<int64_t>(row_ptr_.size()) * 8 +
                          static_cast<int64_t>(col_idx_.size()) * 4;
  return indices + (quant_.present() ? quant_.memory_bytes()
                                     : static_cast<int64_t>(values_.size()) * 4);
}

Csr Csr::from_dense(const tensor::Tensor& dense, float threshold) {
  if (dense.rank() != 2) {
    throw std::invalid_argument("Csr::from_dense: expected rank-2, got " +
                                dense.shape().str());
  }
  if (threshold < 0.0F) {
    throw std::invalid_argument("Csr::from_dense: threshold must be >= 0");
  }
  Csr csr;
  csr.rows_ = dense.dim(0);
  csr.cols_ = dense.dim(1);
  csr.row_ptr_.reserve(static_cast<std::size_t>(csr.rows_) + 1);
  csr.row_ptr_.push_back(0);
  for (int64_t r = 0; r < csr.rows_; ++r) {
    for (int64_t c = 0; c < csr.cols_; ++c) {
      const float v = dense.at(r, c);
      if (std::fabs(v) > threshold) {
        csr.col_idx_.push_back(static_cast<int32_t>(c));
        csr.values_.push_back(v);
      }
    }
    csr.row_ptr_.push_back(static_cast<int64_t>(csr.values_.size()));
  }
  return csr;
}

Csr Csr::from_weights(const tensor::Tensor& weights, float threshold) {
  if (weights.rank() < 2) {
    throw std::invalid_argument("Csr::from_weights: expected rank >= 2, got " +
                                weights.shape().str());
  }
  const int64_t rows = weights.dim(0);
  return from_dense(weights.reshaped(tensor::Shape{rows, weights.numel() / rows}),
                    threshold);
}

tensor::Tensor Csr::to_dense() const {
  tensor::Tensor out(tensor::Shape{rows_, cols_});
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t k = row_ptr_[static_cast<std::size_t>(r)];
         k < row_ptr_[static_cast<std::size_t>(r) + 1]; ++k) {
      out.at(r, col_idx_[static_cast<std::size_t>(k)]) =
          quant_.present() ? quant_.dequant(r, k) : values_[static_cast<std::size_t>(k)];
    }
  }
  return out;
}

Csr Csr::transposed() const {
  if (quant_.present()) {
    // The per-row groups would have to be regrouped per column; the
    // runtime always transposes first and quantises the result.
    throw std::logic_error("Csr::transposed: transpose before quantize");
  }
  Csr t;
  t.rows_ = cols_;
  t.cols_ = rows_;
  const auto nnz_count = values_.size();
  t.col_idx_.resize(nnz_count);
  t.values_.resize(nnz_count);
  // Counting transpose: histogram per source column, prefix-sum into row
  // starts, then place entries in source (row-major, ascending column)
  // order so every transposed row ends up sorted by its columns.
  t.row_ptr_.assign(static_cast<std::size_t>(cols_) + 1, 0);
  for (const int32_t c : col_idx_) ++t.row_ptr_[static_cast<std::size_t>(c) + 1];
  for (int64_t r = 0; r < cols_; ++r) {
    t.row_ptr_[static_cast<std::size_t>(r) + 1] += t.row_ptr_[static_cast<std::size_t>(r)];
  }
  std::vector<int64_t> cursor(t.row_ptr_.begin(), t.row_ptr_.end() - 1);
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t k = row_ptr_[static_cast<std::size_t>(r)];
         k < row_ptr_[static_cast<std::size_t>(r) + 1]; ++k) {
      const auto c = static_cast<std::size_t>(col_idx_[static_cast<std::size_t>(k)]);
      const int64_t slot = cursor[c]++;
      t.col_idx_[static_cast<std::size_t>(slot)] = static_cast<int32_t>(r);
      t.values_[static_cast<std::size_t>(slot)] = values_[static_cast<std::size_t>(k)];
    }
  }
  return t;
}

void Csr::spmv_gather(const float* x, const int32_t* active, int64_t n_active,
                      double* acc, int32_t* iacc, util::simd::Tier tier) const {
  // Single body across tiers (see the header); the parameter keeps the
  // dispatch surface uniform and the request clamping observable.
  (void)util::simd::resolve(tier);
  if (quant_.present()) {
    if (const int shift = quant_.group_shift(); shift >= 0) {
      // Fixed-size grouped plane (always symmetric): fold the group
      // scale into each code. Groups straddle rows, so there is no
      // per-input scale to hoist.
      const float* scale = quant_.scale.data();
      for (int64_t a = 0; a < n_active; ++a) {
        const auto j = static_cast<std::size_t>(active[a]);
        const double xj = static_cast<double>(x[j]);
        for (int64_t k = row_ptr_[j]; k < row_ptr_[j + 1]; ++k) {
          acc[col_idx_[static_cast<std::size_t>(k)]] +=
              static_cast<double>(scale[k >> shift] *
                                  static_cast<float>(quant_.code(k))) *
              xj;
        }
      }
      return;
    }
    // Binary-spike fast path: with one plane-wide scale (uniform) and a
    // zero zero-point, {0,1} activations make every contribution a raw
    // code, so the whole gather is int32 adds plus one scale multiply
    // per output. Gate on the actual activation values — a forced event
    // mode can route analog inputs here.
    if (quant_.uniform && iacc != nullptr && n_active > 0 && quant_.zero[0] == 0) {
      bool binary = true;
      for (int64_t a = 0; a < n_active; ++a) binary &= x[active[a]] == 1.0F;
      if (binary) {
        std::fill(iacc, iacc + cols_, 0);
        for (int64_t a = 0; a < n_active; ++a) {
          const auto j = static_cast<std::size_t>(active[a]);
          for (int64_t k = row_ptr_[j]; k < row_ptr_[j + 1]; ++k) {
            iacc[col_idx_[static_cast<std::size_t>(k)]] +=
                static_cast<int32_t>(quant_.code(k));
          }
        }
        const double s = static_cast<double>(quant_.scale[0]);
        for (int64_t c = 0; c < cols_; ++c) {
          if (iacc[c] != 0) acc[c] += s * static_cast<double>(iacc[c]);
        }
        return;
      }
    }
    // `this` is Wᵀ, so a group (row) is one input feature: fold its
    // scale into the activation once per active input, then each term
    // is a small-int multiply-add.
    for (int64_t a = 0; a < n_active; ++a) {
      const auto j = static_cast<std::size_t>(active[a]);
      const double u = static_cast<double>(quant_.scale[j] * x[j]);
      const int zp = quant_.zero[j];
      for (int64_t k = row_ptr_[j]; k < row_ptr_[j + 1]; ++k) {
        acc[col_idx_[static_cast<std::size_t>(k)]] +=
            static_cast<double>(static_cast<int>(quant_.code(k)) - zp) * u;
      }
    }
    return;
  }
  for (int64_t a = 0; a < n_active; ++a) {
    const auto j = static_cast<std::size_t>(active[a]);
    const double xj = static_cast<double>(x[j]);
    for (int64_t k = row_ptr_[j]; k < row_ptr_[j + 1]; ++k) {
      acc[col_idx_[static_cast<std::size_t>(k)]] +=
          static_cast<double>(values_[static_cast<std::size_t>(k)]) * xj;
    }
  }
}

void Csr::scatter_row(int64_t row, float x, float* out, int64_t out_stride,
                      util::simd::Tier tier) const {
  (void)util::simd::resolve(tier);  // single body across tiers (see header)
  const int64_t k0 = row_ptr_[static_cast<std::size_t>(row)];
  const int64_t k1 = row_ptr_[static_cast<std::size_t>(row) + 1];
  if (quant_.present()) {
    if (const int shift = quant_.group_shift(); shift >= 0) {
      const float* scale = quant_.scale.data();
      for (int64_t k = k0; k < k1; ++k) {
        out[static_cast<int64_t>(col_idx_[static_cast<std::size_t>(k)]) * out_stride] +=
            scale[k >> shift] * static_cast<float>(quant_.code(k)) * x;
      }
      return;
    }
    const float xs = quant_.scale[static_cast<std::size_t>(row)] * x;
    const int zp = quant_.zero[static_cast<std::size_t>(row)];
    for (int64_t k = k0; k < k1; ++k) {
      out[static_cast<int64_t>(col_idx_[static_cast<std::size_t>(k)]) * out_stride] +=
          static_cast<float>(static_cast<int>(quant_.code(k)) - zp) * xs;
    }
    return;
  }
  for (int64_t k = k0; k < k1; ++k) {
    out[static_cast<int64_t>(col_idx_[static_cast<std::size_t>(k)]) * out_stride] +=
        values_[static_cast<std::size_t>(k)] * x;
  }
}

void Csr::scatter_row_range(int64_t row, float x, float* out, int64_t out_stride,
                            int64_t col_begin, int64_t col_end) const {
  const int64_t k0 = row_ptr_[static_cast<std::size_t>(row)];
  const int64_t k1 = row_ptr_[static_cast<std::size_t>(row) + 1];
  // Columns are ascending within the row: binary-search the strip start,
  // walk until the strip ends.
  const int32_t* cb = col_idx_.data();
  int64_t k = std::lower_bound(cb + k0, cb + k1, static_cast<int32_t>(col_begin)) - cb;
  if (quant_.present()) {
    if (const int shift = quant_.group_shift(); shift >= 0) {
      const float* scale = quant_.scale.data();
      for (; k < k1 && cb[k] < col_end; ++k) {
        out[static_cast<int64_t>(cb[k]) * out_stride] +=
            scale[k >> shift] * static_cast<float>(quant_.code(k)) * x;
      }
      return;
    }
    const float xs = quant_.scale[static_cast<std::size_t>(row)] * x;
    const int zp = quant_.zero[static_cast<std::size_t>(row)];
    for (; k < k1 && cb[k] < col_end; ++k) {
      out[static_cast<int64_t>(cb[k]) * out_stride] +=
          static_cast<float>(static_cast<int>(quant_.code(k)) - zp) * xs;
    }
    return;
  }
  for (; k < k1 && cb[k] < col_end; ++k) {
    out[static_cast<int64_t>(cb[k]) * out_stride] += values_[static_cast<std::size_t>(k)] * x;
  }
}

std::vector<float> Csr::matvec(const std::vector<float>& x) const {
  if (static_cast<int64_t>(x.size()) != cols_) {
    throw std::invalid_argument("Csr::matvec: x size mismatch");
  }
  std::vector<float> y(static_cast<std::size_t>(rows_), 0.0F);
  for (int64_t r = 0; r < rows_; ++r) {
    const int64_t k0 = row_ptr_[static_cast<std::size_t>(r)];
    const int64_t k1 = row_ptr_[static_cast<std::size_t>(r) + 1];
    double acc = 0.0;
    if (const int shift = quant_.group_shift(); shift >= 0) {
      for (int64_t k = k0; k < k1; ++k) {
        acc += static_cast<double>(quant_.scale[k >> shift] *
                                   static_cast<float>(quant_.code(k))) *
               x[static_cast<std::size_t>(col_idx_[static_cast<std::size_t>(k)])];
      }
    } else if (quant_.present()) {
      double qacc = 0.0, xsum = 0.0;
      for (int64_t k = k0; k < k1; ++k) {
        const double xk = x[static_cast<std::size_t>(col_idx_[static_cast<std::size_t>(k)])];
        qacc += static_cast<double>(quant_.code(k)) * xk;
        xsum += xk;
      }
      const auto g = static_cast<std::size_t>(r);
      acc = static_cast<double>(quant_.scale[g]) *
            (qacc - static_cast<double>(quant_.zero[g]) * xsum);
    } else {
      for (int64_t k = k0; k < k1; ++k) {
        acc += static_cast<double>(values_[static_cast<std::size_t>(k)]) *
               x[static_cast<std::size_t>(col_idx_[static_cast<std::size_t>(k)])];
      }
    }
    y[static_cast<std::size_t>(r)] = static_cast<float>(acc);
  }
  return y;
}

void Csr::spmm_range(int64_t r0, int64_t r1, const float* bp, int64_t n, float* cp) const {
  if (quant_.present()) {
    if (const int shift = quant_.group_shift(); shift >= 0) {
      // Fixed-size grouped plane: the scale changes within a row, so
      // dequantise per nonzero (one extra multiply per axpy) instead of
      // once per output row.
      const float* scale = quant_.scale.data();
      for (int64_t r = r0; r < r1; ++r) {
        float* crow = cp + r * n;
        for (int64_t k = row_ptr_[static_cast<std::size_t>(r)];
             k < row_ptr_[static_cast<std::size_t>(r) + 1]; ++k) {
          const float v = scale[k >> shift] * static_cast<float>(quant_.code(k));
          const float* brow =
              bp + static_cast<int64_t>(col_idx_[static_cast<std::size_t>(k)]) * n;
          for (int64_t j = 0; j < n; ++j) crow[j] += v * brow[j];
        }
      }
      return;
    }
    // Accumulate raw-code axpys into row r, then dequantise the row
    // once: C[r, :] = scale_r * (sum_k q_k B[col_k, :] - zero_r * sum_k
    // B[col_k, :]). The zero-point sum is skipped entirely for the
    // symmetric planes the runtime builds.
    std::vector<float> xrow;
    for (int64_t r = r0; r < r1; ++r) {
      const int64_t k0 = row_ptr_[static_cast<std::size_t>(r)];
      const int64_t k1 = row_ptr_[static_cast<std::size_t>(r) + 1];
      if (k0 == k1) continue;
      float* crow = cp + r * n;
      const int zp = quant_.zero[static_cast<std::size_t>(r)];
      if (zp != 0) xrow.assign(static_cast<std::size_t>(n), 0.0F);
      for (int64_t k = k0; k < k1; ++k) {
        const auto qv = static_cast<float>(quant_.code(k));
        const float* brow =
            bp + static_cast<int64_t>(col_idx_[static_cast<std::size_t>(k)]) * n;
        if (zp != 0) {
          for (int64_t j = 0; j < n; ++j) {
            crow[j] += qv * brow[j];
            xrow[static_cast<std::size_t>(j)] += brow[j];
          }
        } else {
          for (int64_t j = 0; j < n; ++j) crow[j] += qv * brow[j];
        }
      }
      const float s = quant_.scale[static_cast<std::size_t>(r)];
      if (zp != 0) {
        const auto z = static_cast<float>(zp);
        for (int64_t j = 0; j < n; ++j) {
          crow[j] = s * (crow[j] - z * xrow[static_cast<std::size_t>(j)]);
        }
      } else {
        for (int64_t j = 0; j < n; ++j) crow[j] *= s;
      }
    }
    return;
  }
  // Row-major streaming: each nonzero A[r, col] scales one full row of B
  // into row r of C, so the inner loop is a contiguous axpy.
  for (int64_t r = r0; r < r1; ++r) {
    float* crow = cp + r * n;
    for (int64_t k = row_ptr_[static_cast<std::size_t>(r)];
         k < row_ptr_[static_cast<std::size_t>(r) + 1]; ++k) {
      const float v = values_[static_cast<std::size_t>(k)];
      const float* brow = bp + static_cast<int64_t>(col_idx_[static_cast<std::size_t>(k)]) * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += v * brow[j];
    }
  }
}

tensor::Tensor Csr::spmm(const tensor::Tensor& b, util::ThreadPool* pool,
                         util::simd::Tier tier) const {
  if (b.rank() != 2 || b.dim(0) != cols_) {
    throw std::invalid_argument("Csr::spmm: expected B [" + std::to_string(cols_) +
                                ", n], got " + b.shape().str());
  }
  const int64_t n = b.dim(1);
  tensor::Tensor c(tensor::Shape{rows_, n});
  const float* bp = b.data();
  float* cp = c.data();
  // The AVX2 fp32 body fuses 4 axpys per pass with the C row held in
  // registers; it needs a vectorizable row width. Quantised planes keep
  // the scalar dequantise-per-row structure at every tier.
  const bool avx2 = util::simd::resolve(tier) == util::simd::Tier::kAvx2 &&
                    simd::built_with_avx2() && !quant_.present() && n >= 8;
  // Output rows are independent: nnz-balanced row ranges (prefix sums
  // over row_ptr, so a dense-heavy row does not serialize its chunk).
  util::parallel_balanced(pool, row_ptr_.data(), rows_, nnz() * n,
                          [&](int64_t r0, int64_t r1) {
                            if (avx2) {
                              simd::csr_spmm_f32_avx2(row_ptr_.data(), col_idx_.data(),
                                                      values_.data(), r0, r1, bp, n, cp);
                            } else {
                              spmm_range(r0, r1, bp, n, cp);
                            }
                          });
  return c;
}

namespace {

/// Quantised spmm_t row kernel, int8 symmetric fast path: the bitwise
/// contract does not apply to quantised execution, so the sum runs in
/// four independent float partials (the serial double chain the fp32
/// kernel is pinned to is latency-bound) and dequantises once at the
/// end.
inline float spmm_t_row_i8(const int8_t* q, const int32_t* col, int64_t count,
                           const float* brow, float scale) {
  float a0 = 0.0F, a1 = 0.0F, a2 = 0.0F, a3 = 0.0F;
  int64_t k = 0;
  for (; k + 4 <= count; k += 4) {
    a0 += static_cast<float>(q[k]) * brow[col[k]];
    a1 += static_cast<float>(q[k + 1]) * brow[col[k + 1]];
    a2 += static_cast<float>(q[k + 2]) * brow[col[k + 2]];
    a3 += static_cast<float>(q[k + 3]) * brow[col[k + 3]];
  }
  for (; k < count; ++k) a0 += static_cast<float>(q[k]) * brow[col[k]];
  return scale * ((a0 + a1) + (a2 + a3));
}

/// int4 symmetric fast path: the packed codes sit two per byte in
/// exactly the order the row walks them, so each loaded byte feeds two
/// independent accumulator chains (plus a third pair on the unrolled
/// second byte). Leading/trailing odd positions fall back to single
/// nibble decodes.
inline float spmm_t_row_i4(const uint8_t* q4, int64_t k0, int64_t k1, const int32_t* col,
                           const float* brow, float scale) {
  const auto decode = [q4](int64_t k) {
    const uint8_t byte = q4[k >> 1];
    return (k & 1) != 0 ? static_cast<float>(static_cast<int8_t>(byte) >> 4)
                        : static_cast<float>(static_cast<int8_t>(byte << 4) >> 4);
  };
  float a0 = 0.0F, a1 = 0.0F, a2 = 0.0F, a3 = 0.0F;
  int64_t k = k0;
  if ((k & 1) != 0 && k < k1) {
    a0 += decode(k) * brow[col[k]];
    ++k;
  }
  for (; k + 4 <= k1; k += 4) {
    const uint8_t b0 = q4[k >> 1];
    const uint8_t b1 = q4[(k >> 1) + 1];
    a0 += static_cast<float>(static_cast<int8_t>(b0 << 4) >> 4) * brow[col[k]];
    a1 += static_cast<float>(static_cast<int8_t>(b0) >> 4) * brow[col[k + 1]];
    a2 += static_cast<float>(static_cast<int8_t>(b1 << 4) >> 4) * brow[col[k + 2]];
    a3 += static_cast<float>(static_cast<int8_t>(b1) >> 4) * brow[col[k + 3]];
  }
  for (; k < k1; ++k) a0 += decode(k) * brow[col[k]];
  return scale * ((a0 + a1) + (a2 + a3));
}

/// Fixed-size grouped plane (always symmetric): the scale varies within
/// the row, so fold scale[k >> shift] into each code. Two independent
/// partials, matching the other quantised row kernels' reassociation
/// freedom.
inline float spmm_t_row_grouped(const QuantPlane& plane, int shift, int64_t k0, int64_t k1,
                                const int32_t* col, const float* brow) {
  const float* scale = plane.scale.data();
  float a0 = 0.0F, a1 = 0.0F;
  int64_t k = k0;
  for (; k + 2 <= k1; k += 2) {
    a0 += scale[k >> shift] * static_cast<float>(plane.code(k)) * brow[col[k]];
    a1 += scale[(k + 1) >> shift] * static_cast<float>(plane.code(k + 1)) *
          brow[col[k + 1]];
  }
  if (k < k1) a0 += scale[k >> shift] * static_cast<float>(plane.code(k)) * brow[col[k]];
  return a0 + a1;
}

/// Generic quantised spmm_t row (nonzero zero-point): accumulate codes
/// and the activation sum, dequantise once.
inline float spmm_t_row_quant(const QuantPlane& plane, int64_t g, int64_t k0, int64_t k1,
                              const int32_t* col, const float* brow) {
  float qacc = 0.0F, xsum = 0.0F;
  for (int64_t k = k0; k < k1; ++k) {
    const float x = brow[col[k]];
    qacc += static_cast<float>(plane.code(k)) * x;
    xsum += x;
  }
  const auto gi = static_cast<std::size_t>(g);
  return plane.scale[gi] * (qacc - static_cast<float>(plane.zero[gi]) * xsum);
}

}  // namespace

void Csr::spmm_t_range(int64_t r0, int64_t r1, const float* bp, int64_t m, float* cp) const {
  if (quant_.present()) {
    const int shift = quant_.group_shift();
    bool any_zero = false;
    for (const int8_t z : quant_.zero) any_zero |= z != 0;
    for (int64_t i = 0; i < m; ++i) {
      const float* brow = bp + i * cols_;
      float* crow = cp + i * rows_;
      for (int64_t r = r0; r < r1; ++r) {
        const int64_t k0 = row_ptr_[static_cast<std::size_t>(r)];
        const int64_t k1 = row_ptr_[static_cast<std::size_t>(r) + 1];
        if (shift >= 0) {
          crow[r] = spmm_t_row_grouped(quant_, shift, k0, k1, col_idx_.data(), brow);
          continue;
        }
        const float scale = quant_.scale[static_cast<std::size_t>(r)];
        crow[r] = any_zero ? spmm_t_row_quant(quant_, r, k0, k1, col_idx_.data(), brow)
                  : quant_.precision == Precision::kInt8
                      ? spmm_t_row_i8(quant_.q8.data() + k0, col_idx_.data() + k0, k1 - k0,
                                      brow, scale)
                      : spmm_t_row_i4(quant_.q4.data(), k0, k1, col_idx_.data(), brow,
                                      scale);
      }
    }
    return;
  }
  // One dense row of B is reused across every CSR row, so keep the batch
  // loop outermost and gather within the row.
  for (int64_t i = 0; i < m; ++i) {
    const float* brow = bp + i * cols_;
    float* crow = cp + i * rows_;
    for (int64_t r = r0; r < r1; ++r) {
      // Double accumulator to mirror matmul_nt, which the dense linear
      // path uses; keeps sparse and dense logits numerically close.
      double acc = 0.0;
      for (int64_t k = row_ptr_[static_cast<std::size_t>(r)];
           k < row_ptr_[static_cast<std::size_t>(r) + 1]; ++k) {
        acc += static_cast<double>(values_[static_cast<std::size_t>(k)]) *
               brow[col_idx_[static_cast<std::size_t>(k)]];
      }
      crow[r] = static_cast<float>(acc);
    }
  }
}

tensor::Tensor Csr::spmm_t(const tensor::Tensor& b, util::ThreadPool* pool,
                           util::simd::Tier tier) const {
  if (b.rank() != 2 || b.dim(1) != cols_) {
    throw std::invalid_argument("Csr::spmm_t: expected B [m, " + std::to_string(cols_) +
                                "], got " + b.shape().str());
  }
  const int64_t m = b.dim(0);
  tensor::Tensor c(tensor::Shape{m, rows_});
  const float* bp = b.data();
  float* cp = c.data();
  // AVX2 batch-panel routes. Building bt = Bᵀ costs one pass over B, so
  // demand a batch wide enough for the 8-lane body (m >= 8) and at
  // least as many nonzeros as B columns (each nonzero is revisited m
  // times — below that the transpose dominates). Quantised planes
  // additionally need every zero-point at 0 (the FMA bodies fold codes
  // directly; the affine path stays scalar).
  enum class Route { kScalar, kF32, kI8, kI4 };
  Route route = Route::kScalar;
  if (util::simd::resolve(tier) == util::simd::Tier::kAvx2 && simd::built_with_avx2() &&
      m >= 8 && nnz() >= cols_) {
    if (!quant_.present()) {
      route = Route::kF32;
    } else {
      bool any_zero = false;
      for (const int8_t z : quant_.zero) any_zero |= z != 0;
      if (!any_zero) {
        route = quant_.precision == Precision::kInt8 ? Route::kI8 : Route::kI4;
      }
    }
  }
  if (route == Route::kScalar) {
    // Partition the CSR rows (columns of C): each chunk writes a
    // disjoint column strip of every C row, per-element order unchanged.
    util::parallel_balanced(pool, row_ptr_.data(), rows_, nnz() * m,
                            [&](int64_t r0, int64_t r1) { spmm_t_range(r0, r1, bp, m, cp); });
    return c;
  }
  std::vector<float> bt(static_cast<std::size_t>(cols_ * m));
  util::parallel_even(pool, 0, cols_, cols_ * m, [&](int64_t c0, int64_t c1) {
    simd::transpose_f32(bp, m, cols_, bt.data(), c0, c1);
  });
  const int shift = quant_.group_shift();
  util::parallel_balanced(
      pool, row_ptr_.data(), rows_, nnz() * m, [&](int64_t r0, int64_t r1) {
        switch (route) {
          case Route::kF32:
            simd::csr_spmm_t_f32_avx2(row_ptr_.data(), col_idx_.data(), values_.data(), r0,
                                      r1, bt.data(), m, rows_, cp);
            break;
          case Route::kI8:
            simd::csr_spmm_t_i8_avx2(row_ptr_.data(), col_idx_.data(), quant_.q8.data(),
                                     quant_.scale.data(), shift, r0, r1, bt.data(), m,
                                     rows_, cp);
            break;
          case Route::kI4:
            simd::csr_spmm_t_i4_avx2(row_ptr_.data(), col_idx_.data(), quant_.q4.data(),
                                     quant_.scale.data(), shift, r0, r1, bt.data(), m,
                                     rows_, cp);
            break;
          case Route::kScalar: break;  // unreachable
        }
      });
  return c;
}

double Csr::sparsity() const {
  const int64_t total = rows_ * cols_;
  if (total == 0) return 0.0;
  return 1.0 - static_cast<double>(nnz()) / static_cast<double>(total);
}

int64_t Csr::storage_bits(int64_t value_bits, int64_t index_bits) const {
  // nnz values + nnz column indices + (rows + 1) row pointers.
  return nnz() * (value_bits + index_bits) + (rows_ + 1) * index_bits;
}

}  // namespace ndsnn::sparse
