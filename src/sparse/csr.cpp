#include "sparse/csr.hpp"

#include <cmath>
#include <stdexcept>

namespace ndsnn::sparse {

Csr Csr::from_dense(const tensor::Tensor& dense, float threshold) {
  if (dense.rank() != 2) {
    throw std::invalid_argument("Csr::from_dense: expected rank-2, got " +
                                dense.shape().str());
  }
  if (threshold < 0.0F) {
    throw std::invalid_argument("Csr::from_dense: threshold must be >= 0");
  }
  Csr csr;
  csr.rows_ = dense.dim(0);
  csr.cols_ = dense.dim(1);
  csr.row_ptr_.reserve(static_cast<std::size_t>(csr.rows_) + 1);
  csr.row_ptr_.push_back(0);
  for (int64_t r = 0; r < csr.rows_; ++r) {
    for (int64_t c = 0; c < csr.cols_; ++c) {
      const float v = dense.at(r, c);
      if (std::fabs(v) > threshold) {
        csr.col_idx_.push_back(static_cast<int32_t>(c));
        csr.values_.push_back(v);
      }
    }
    csr.row_ptr_.push_back(static_cast<int64_t>(csr.values_.size()));
  }
  return csr;
}

Csr Csr::from_weights(const tensor::Tensor& weights, float threshold) {
  if (weights.rank() < 2) {
    throw std::invalid_argument("Csr::from_weights: expected rank >= 2, got " +
                                weights.shape().str());
  }
  const int64_t rows = weights.dim(0);
  return from_dense(weights.reshaped(tensor::Shape{rows, weights.numel() / rows}),
                    threshold);
}

tensor::Tensor Csr::to_dense() const {
  tensor::Tensor out(tensor::Shape{rows_, cols_});
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t k = row_ptr_[static_cast<std::size_t>(r)];
         k < row_ptr_[static_cast<std::size_t>(r) + 1]; ++k) {
      out.at(r, col_idx_[static_cast<std::size_t>(k)]) = values_[static_cast<std::size_t>(k)];
    }
  }
  return out;
}

Csr Csr::transposed() const {
  Csr t;
  t.rows_ = cols_;
  t.cols_ = rows_;
  const auto nnz_count = values_.size();
  t.col_idx_.resize(nnz_count);
  t.values_.resize(nnz_count);
  // Counting transpose: histogram per source column, prefix-sum into row
  // starts, then place entries in source (row-major, ascending column)
  // order so every transposed row ends up sorted by its columns.
  t.row_ptr_.assign(static_cast<std::size_t>(cols_) + 1, 0);
  for (const int32_t c : col_idx_) ++t.row_ptr_[static_cast<std::size_t>(c) + 1];
  for (int64_t r = 0; r < cols_; ++r) {
    t.row_ptr_[static_cast<std::size_t>(r) + 1] += t.row_ptr_[static_cast<std::size_t>(r)];
  }
  std::vector<int64_t> cursor(t.row_ptr_.begin(), t.row_ptr_.end() - 1);
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t k = row_ptr_[static_cast<std::size_t>(r)];
         k < row_ptr_[static_cast<std::size_t>(r) + 1]; ++k) {
      const auto c = static_cast<std::size_t>(col_idx_[static_cast<std::size_t>(k)]);
      const int64_t slot = cursor[c]++;
      t.col_idx_[static_cast<std::size_t>(slot)] = static_cast<int32_t>(r);
      t.values_[static_cast<std::size_t>(slot)] = values_[static_cast<std::size_t>(k)];
    }
  }
  return t;
}

void Csr::spmv_gather(const float* x, const int32_t* active, int64_t n_active,
                      double* acc) const {
  for (int64_t a = 0; a < n_active; ++a) {
    const auto j = static_cast<std::size_t>(active[a]);
    const double xj = static_cast<double>(x[j]);
    for (int64_t k = row_ptr_[j]; k < row_ptr_[j + 1]; ++k) {
      acc[col_idx_[static_cast<std::size_t>(k)]] +=
          static_cast<double>(values_[static_cast<std::size_t>(k)]) * xj;
    }
  }
}

void Csr::scatter_row(int64_t row, float x, float* out, int64_t out_stride) const {
  for (int64_t k = row_ptr_[static_cast<std::size_t>(row)];
       k < row_ptr_[static_cast<std::size_t>(row) + 1]; ++k) {
    out[static_cast<int64_t>(col_idx_[static_cast<std::size_t>(k)]) * out_stride] +=
        values_[static_cast<std::size_t>(k)] * x;
  }
}

std::vector<float> Csr::matvec(const std::vector<float>& x) const {
  if (static_cast<int64_t>(x.size()) != cols_) {
    throw std::invalid_argument("Csr::matvec: x size mismatch");
  }
  std::vector<float> y(static_cast<std::size_t>(rows_), 0.0F);
  for (int64_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (int64_t k = row_ptr_[static_cast<std::size_t>(r)];
         k < row_ptr_[static_cast<std::size_t>(r) + 1]; ++k) {
      acc += static_cast<double>(values_[static_cast<std::size_t>(k)]) *
             x[static_cast<std::size_t>(col_idx_[static_cast<std::size_t>(k)])];
    }
    y[static_cast<std::size_t>(r)] = static_cast<float>(acc);
  }
  return y;
}

tensor::Tensor Csr::spmm(const tensor::Tensor& b) const {
  if (b.rank() != 2 || b.dim(0) != cols_) {
    throw std::invalid_argument("Csr::spmm: expected B [" + std::to_string(cols_) +
                                ", n], got " + b.shape().str());
  }
  const int64_t n = b.dim(1);
  tensor::Tensor c(tensor::Shape{rows_, n});
  const float* bp = b.data();
  float* cp = c.data();
  // Row-major streaming: each nonzero A[r, col] scales one full row of B
  // into row r of C, so the inner loop is a contiguous axpy.
  for (int64_t r = 0; r < rows_; ++r) {
    float* crow = cp + r * n;
    for (int64_t k = row_ptr_[static_cast<std::size_t>(r)];
         k < row_ptr_[static_cast<std::size_t>(r) + 1]; ++k) {
      const float v = values_[static_cast<std::size_t>(k)];
      const float* brow = bp + static_cast<int64_t>(col_idx_[static_cast<std::size_t>(k)]) * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += v * brow[j];
    }
  }
  return c;
}

tensor::Tensor Csr::spmm_t(const tensor::Tensor& b) const {
  if (b.rank() != 2 || b.dim(1) != cols_) {
    throw std::invalid_argument("Csr::spmm_t: expected B [m, " + std::to_string(cols_) +
                                "], got " + b.shape().str());
  }
  const int64_t m = b.dim(0);
  tensor::Tensor c(tensor::Shape{m, rows_});
  const float* bp = b.data();
  float* cp = c.data();
  // One dense row of B is reused across every CSR row, so keep the batch
  // loop outermost and gather within the row.
  for (int64_t i = 0; i < m; ++i) {
    const float* brow = bp + i * cols_;
    float* crow = cp + i * rows_;
    for (int64_t r = 0; r < rows_; ++r) {
      // Double accumulator to mirror matmul_nt, which the dense linear
      // path uses; keeps sparse and dense logits numerically close.
      double acc = 0.0;
      for (int64_t k = row_ptr_[static_cast<std::size_t>(r)];
           k < row_ptr_[static_cast<std::size_t>(r) + 1]; ++k) {
        acc += static_cast<double>(values_[static_cast<std::size_t>(k)]) *
               brow[col_idx_[static_cast<std::size_t>(k)]];
      }
      crow[r] = static_cast<float>(acc);
    }
  }
  return c;
}

double Csr::sparsity() const {
  const int64_t total = rows_ * cols_;
  if (total == 0) return 0.0;
  return 1.0 - static_cast<double>(nnz()) / static_cast<double>(total);
}

int64_t Csr::storage_bits(int64_t value_bits, int64_t index_bits) const {
  // nnz values + nnz column indices + (rows + 1) row pointers.
  return nnz() * (value_bits + index_bits) + (rows_ + 1) * index_bits;
}

}  // namespace ndsnn::sparse
