#include "sparse/csr.hpp"

#include <stdexcept>

namespace ndsnn::sparse {

Csr Csr::from_dense(const tensor::Tensor& dense) {
  if (dense.rank() != 2) {
    throw std::invalid_argument("Csr::from_dense: expected rank-2, got " +
                                dense.shape().str());
  }
  Csr csr;
  csr.rows_ = dense.dim(0);
  csr.cols_ = dense.dim(1);
  csr.row_ptr_.reserve(static_cast<std::size_t>(csr.rows_) + 1);
  csr.row_ptr_.push_back(0);
  for (int64_t r = 0; r < csr.rows_; ++r) {
    for (int64_t c = 0; c < csr.cols_; ++c) {
      const float v = dense.at(r, c);
      if (v != 0.0F) {
        csr.col_idx_.push_back(static_cast<int32_t>(c));
        csr.values_.push_back(v);
      }
    }
    csr.row_ptr_.push_back(static_cast<int64_t>(csr.values_.size()));
  }
  return csr;
}

tensor::Tensor Csr::to_dense() const {
  tensor::Tensor out(tensor::Shape{rows_, cols_});
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t k = row_ptr_[static_cast<std::size_t>(r)];
         k < row_ptr_[static_cast<std::size_t>(r) + 1]; ++k) {
      out.at(r, col_idx_[static_cast<std::size_t>(k)]) = values_[static_cast<std::size_t>(k)];
    }
  }
  return out;
}

std::vector<float> Csr::matvec(const std::vector<float>& x) const {
  if (static_cast<int64_t>(x.size()) != cols_) {
    throw std::invalid_argument("Csr::matvec: x size mismatch");
  }
  std::vector<float> y(static_cast<std::size_t>(rows_), 0.0F);
  for (int64_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (int64_t k = row_ptr_[static_cast<std::size_t>(r)];
         k < row_ptr_[static_cast<std::size_t>(r) + 1]; ++k) {
      acc += static_cast<double>(values_[static_cast<std::size_t>(k)]) *
             x[static_cast<std::size_t>(col_idx_[static_cast<std::size_t>(k)])];
    }
    y[static_cast<std::size_t>(r)] = static_cast<float>(acc);
  }
  return y;
}

double Csr::sparsity() const {
  const int64_t total = rows_ * cols_;
  if (total == 0) return 0.0;
  return 1.0 - static_cast<double>(nnz()) / static_cast<double>(total);
}

int64_t Csr::storage_bits(int64_t value_bits, int64_t index_bits) const {
  // nnz values + nnz column indices + (rows + 1) row pointers.
  return nnz() * (value_bits + index_bits) + (rows_ + 1) * index_bits;
}

}  // namespace ndsnn::sparse
