#include "sparse/quant.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ndsnn::sparse {

namespace {

/// Signed code magnitude limit per precision. Symmetric mode clamps to
/// [-qmax, qmax] (the -128/-8 slot stays unused so +/- ranges match);
/// affine mode uses the full [qmin, qmax] span.
int qmax_for(Precision p) { return p == Precision::kInt8 ? 127 : 7; }
int qmin_for(Precision p) { return p == Precision::kInt8 ? -128 : -8; }

struct GroupParams {
  float scale = 1.0F;
  int zero = 0;
};

/// Scale/zero-point for one group of values. Real 0.0 always maps to an
/// exact code: symmetric mode by construction (zero == 0), affine mode
/// because the range is widened to include 0 and the zero-point is an
/// integer code.
GroupParams group_params(const float* v, int64_t count, Precision p, bool symmetric) {
  GroupParams gp;
  if (count <= 0) return gp;
  const int qmax = qmax_for(p);
  if (symmetric) {
    float max_abs = 0.0F;
    for (int64_t i = 0; i < count; ++i) max_abs = std::max(max_abs, std::fabs(v[i]));
    gp.scale = max_abs > 0.0F ? max_abs / static_cast<float>(qmax) : 1.0F;
    return gp;
  }
  const int qmin = qmin_for(p);
  float lo = 0.0F, hi = 0.0F;
  for (int64_t i = 0; i < count; ++i) {
    lo = std::min(lo, v[i]);
    hi = std::max(hi, v[i]);
  }
  if (hi == lo) return gp;  // all zeros: scale 1, zero 0
  gp.scale = (hi - lo) / static_cast<float>(qmax - qmin);
  gp.zero = std::clamp(
      static_cast<int>(std::lrintf(static_cast<float>(qmin) - lo / gp.scale)), qmin, qmax);
  return gp;
}

int encode_one(float v, const GroupParams& gp, int qmin, int qmax) {
  return std::clamp(static_cast<int>(std::lrintf(v / gp.scale)) + gp.zero, qmin, qmax);
}

template <typename GroupBounds>
QuantPlane build_plane(const float* values, int64_t groups, int64_t value_count,
                       Precision precision, bool symmetric, float* max_abs_error,
                       bool uniform_scale, const GroupBounds& bounds) {
  if (precision == Precision::kFp32) {
    throw std::invalid_argument("quantize: kFp32 is the absence of a plane");
  }
  QuantPlane plane;
  plane.precision = precision;
  plane.value_count = value_count;
  plane.uniform = uniform_scale;
  // Uniform mode: one scale/zero over the whole plane, replicated per
  // group so kernels keep indexing scale[g] without a special case.
  const GroupParams shared =
      uniform_scale ? group_params(values, value_count, precision, symmetric)
                    : GroupParams{};
  plane.scale.resize(static_cast<std::size_t>(groups));
  plane.zero.resize(static_cast<std::size_t>(groups));
  if (precision == Precision::kInt8) {
    plane.q8.resize(static_cast<std::size_t>(value_count));
  } else {
    plane.q4.assign(static_cast<std::size_t>((value_count + 1) / 2), 0);
  }
  // Symmetric mode keeps the +/- code ranges equal; affine uses the full
  // two's-complement span.
  const int qmax = qmax_for(precision);
  const int qmin = symmetric ? -qmax : qmin_for(precision);
  float worst = 0.0F;
  for (int64_t g = 0; g < groups; ++g) {
    const auto [lo_k, hi_k] = bounds(g);
    const GroupParams gp =
        uniform_scale ? shared
                      : group_params(values + lo_k, hi_k - lo_k, precision, symmetric);
    plane.scale[static_cast<std::size_t>(g)] = gp.scale;
    plane.zero[static_cast<std::size_t>(g)] = static_cast<int8_t>(gp.zero);
    for (int64_t k = lo_k; k < hi_k; ++k) {
      const int q = encode_one(values[k], gp, qmin, qmax);
      if (precision == Precision::kInt8) {
        plane.q8[static_cast<std::size_t>(k)] = static_cast<int8_t>(q);
      } else {
        const auto nibble = static_cast<uint8_t>(q & 0xF);
        auto& byte = plane.q4[static_cast<std::size_t>(k >> 1)];
        byte = (k & 1) != 0 ? static_cast<uint8_t>((byte & 0x0F) | (nibble << 4))
                            : static_cast<uint8_t>((byte & 0xF0) | nibble);
      }
      if (max_abs_error != nullptr) {
        worst = std::max(worst, std::fabs(plane.dequant(g, k) - values[k]));
      }
    }
  }
  if (max_abs_error != nullptr) *max_abs_error = worst;
  return plane;
}

}  // namespace

const char* precision_tag(Precision p) {
  switch (p) {
    case Precision::kFp32: return "fp32";
    case Precision::kInt8: return "int8";
    case Precision::kInt4: return "int4";
  }
  return "?";
}

int64_t precision_value_bits(Precision p) {
  switch (p) {
    case Precision::kFp32: return 32;
    case Precision::kInt8: return 8;
    case Precision::kInt4: return 4;
  }
  return 32;
}

Precision parse_precision(const std::string& s) {
  if (s == "fp32") return Precision::kFp32;
  if (s == "int8") return Precision::kInt8;
  if (s == "int4") return Precision::kInt4;
  throw std::invalid_argument("parse_precision: expected fp32|int8|int4, got '" + s + "'");
}

int64_t QuantPlane::memory_bytes() const {
  return static_cast<int64_t>(q8.size()) + static_cast<int64_t>(q4.size()) +
         static_cast<int64_t>(scale.size()) * 4 + static_cast<int64_t>(zero.size());
}

QuantPlane quantize_grouped(const float* values, const int64_t* group_ptr, int64_t groups,
                            Precision precision, bool symmetric, float* max_abs_error,
                            bool uniform_scale) {
  return build_plane(values, groups, group_ptr[groups], precision, symmetric, max_abs_error,
                     uniform_scale, [group_ptr](int64_t g) {
                       return std::pair<int64_t, int64_t>{group_ptr[g], group_ptr[g + 1]};
                     });
}

QuantPlane quantize_fixed(const float* values, int64_t groups, int64_t group_size,
                          Precision precision, bool symmetric, float* max_abs_error,
                          bool uniform_scale) {
  return build_plane(values, groups, groups * group_size, precision, symmetric,
                     max_abs_error, uniform_scale, [group_size](int64_t g) {
                       return std::pair<int64_t, int64_t>{g * group_size,
                                                          (g + 1) * group_size};
                     });
}

float relative_quant_error(const tensor::Tensor& weights, Precision precision,
                           float threshold, bool uniform_scale, int64_t group_size) {
  if (precision == Precision::kFp32 || weights.numel() == 0) return 0.0F;
  if (weights.rank() < 1) return 0.0F;
  const int64_t rows = weights.dim(0);
  if (rows == 0) return 0.0F;
  const int64_t cols = weights.numel() / rows;
  const float* w = weights.data();
  const int qmax = qmax_for(precision);
  if (group_size > 0) {
    // Mirror the emitted plane: surviving entries in row-major order,
    // fixed-size symmetric groups that may straddle row boundaries.
    std::vector<float> kept;
    float global_max = 0.0F;
    for (int64_t i = 0; i < rows * cols; ++i) {
      const float a = std::fabs(w[i]);
      if (a > threshold) {
        kept.push_back(w[i]);
        global_max = std::max(global_max, a);
      }
    }
    if (kept.empty() || global_max == 0.0F) return 0.0F;
    double err_sum = 0.0;
    const auto n = static_cast<int64_t>(kept.size());
    for (int64_t g0 = 0; g0 < n; g0 += group_size) {
      const int64_t g1 = std::min(n, g0 + group_size);
      float gmax = 0.0F;
      for (int64_t i = g0; i < g1; ++i) gmax = std::max(gmax, std::fabs(kept[i]));
      if (gmax == 0.0F) continue;
      const float scale = gmax / static_cast<float>(qmax);
      for (int64_t i = g0; i < g1; ++i) {
        const int q =
            std::clamp(static_cast<int>(std::lrintf(kept[i] / scale)), -qmax, qmax);
        err_sum += std::fabs(scale * static_cast<float>(q) - kept[i]);
      }
    }
    return static_cast<float>(err_sum / static_cast<double>(n)) / global_max;
  }
  float global_max = 0.0F;
  if (uniform_scale) {
    for (int64_t i = 0; i < rows * cols; ++i) {
      const float a = std::fabs(w[i]);
      if (a > threshold) global_max = std::max(global_max, a);
    }
    if (global_max == 0.0F) return 0.0F;
  }
  float worst = 0.0F;
  for (int64_t r = 0; r < rows; ++r) {
    const float* row = w + r * cols;
    float row_max = 0.0F;
    for (int64_t c = 0; c < cols; ++c) {
      const float a = std::fabs(row[c]);
      if (a > threshold) row_max = std::max(row_max, a);
    }
    if (row_max == 0.0F) continue;
    global_max = std::max(global_max, row_max);
    const float scale = (uniform_scale ? global_max : row_max) / static_cast<float>(qmax);
    for (int64_t c = 0; c < cols; ++c) {
      if (std::fabs(row[c]) <= threshold) continue;
      const int q = std::clamp(static_cast<int>(std::lrintf(row[c] / scale)), -qmax, qmax);
      worst = std::max(worst, std::fabs(scale * static_cast<float>(q) - row[c]));
    }
  }
  return global_max > 0.0F ? worst / global_max : 0.0F;
}

std::vector<float> fake_quantize_rows(tensor::Tensor& weights, Precision precision) {
  const int64_t rows = weights.rank() >= 1 ? weights.dim(0) : 1;
  std::vector<float> scales(static_cast<std::size_t>(rows), 1.0F);
  if (precision == Precision::kFp32 || weights.numel() == 0 || rows == 0) return scales;
  const int64_t cols = weights.numel() / rows;
  const int qmax = qmax_for(precision);
  float* w = weights.data();
  for (int64_t r = 0; r < rows; ++r) {
    float* row = w + r * cols;
    const GroupParams gp = group_params(row, cols, precision, /*symmetric=*/true);
    scales[static_cast<std::size_t>(r)] = gp.scale;
    for (int64_t c = 0; c < cols; ++c) {
      row[c] = gp.scale * static_cast<float>(encode_one(row[c], gp, -qmax, qmax));
    }
  }
  return scales;
}

}  // namespace ndsnn::sparse
