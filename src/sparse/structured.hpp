// N:M structured sparsity utilities.
//
// Neuromorphic and tensor-core hardware prefers *structured* sparsity:
// at most N non-zeros in every group of M consecutive weights (e.g. 2:4
// on NVIDIA Ampere, row-block patterns on FPGA SNN accelerators like
// SyncNN [27]). These helpers project an unstructured NDSNN-trained
// tensor onto an N:M pattern and quantify the accuracy-relevant damage
// (how much magnitude mass the projection discards), supporting the
// deployment story of Sec. III-D.
#pragma once

#include <cstdint>
#include <string>

#include "tensor/tensor.hpp"

namespace ndsnn::sparse {

struct NmPattern {
  int64_t n = 2;  ///< max non-zeros kept per group
  int64_t m = 4;  ///< group size (consecutive along the fastest axis)

  void validate() const;
};

/// Project `weights` onto the N:M pattern in place: in every group of M
/// consecutive elements (row-major), keep the N largest magnitudes and
/// zero the rest. The tail group (numel % M) keeps proportionally
/// ceil(N * tail / M) entries.
void project_nm(tensor::Tensor& weights, const NmPattern& pattern);

/// True when `weights` already satisfies the pattern.
[[nodiscard]] bool satisfies_nm(const tensor::Tensor& weights, const NmPattern& pattern);

/// Fraction of total |w| mass removed by projecting (0 = lossless).
/// Does not modify `weights`.
[[nodiscard]] double nm_projection_loss(const tensor::Tensor& weights,
                                        const NmPattern& pattern);

/// Sparsity implied by the pattern itself: 1 - N/M.
[[nodiscard]] double nm_sparsity(const NmPattern& pattern);

/// Parse an "N:M" spec ("2:4", "1:4") into a validated pattern; throws
/// std::invalid_argument on malformed input. Used by benches/examples.
[[nodiscard]] NmPattern parse_nm(const std::string& spec);

}  // namespace ndsnn::sparse
