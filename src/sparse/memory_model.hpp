// Training/inference memory-footprint model (Sec. III-D).
//
// For a network with N prunable weights at sparsity theta trained over t
// timesteps, each round of forward+backward keeps weights plus t gradient
// copies alive; sparse topology costs one b_idx-bit index per non-zero
// plus (F_l + 1) row pointers per layer:
//
//   footprint_bits = (1-theta) * ((1+t) * N * b_w + N * b_idx)
//                    + sum_l (F_l + 1) * b_idx
//
// The paper's approximation drops the row-pointer term; both are exposed.
#pragma once

#include <cstdint>
#include <vector>

namespace ndsnn::sparse {

struct MemoryModelInput {
  int64_t total_weights = 0;          ///< N over all prunable layers
  double sparsity = 0.0;              ///< theta in [0, 1]
  int64_t timesteps = 5;              ///< t
  int64_t weight_bits = 32;           ///< b_w (FP32 training)
  int64_t index_bits = 16;            ///< b_idx
  std::vector<int64_t> filters_per_layer;  ///< F_l (for the exact formula)

  void validate() const;
};

/// Exact footprint in bits (with the row-pointer term).
[[nodiscard]] int64_t footprint_bits_exact(const MemoryModelInput& in);

/// Paper's approximation: (1-theta)((1+t) N b_w + N b_idx).
[[nodiscard]] int64_t footprint_bits_approx(const MemoryModelInput& in);

/// Convenience: bytes (rounded up) of the approximate footprint.
[[nodiscard]] double footprint_mbytes_approx(const MemoryModelInput& in);

}  // namespace ndsnn::sparse
