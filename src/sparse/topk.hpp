// Top-k index selection: ArgDrop / ArgGrow primitives (Algorithm 1).
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace ndsnn::sparse {

/// Among `candidates` (flat indices into `values`), return the k with the
/// SMALLEST |values[i]| -- the connections to drop ("weights closest to
/// zero", Sec. III-C step 3). Deterministic: ties break on lower index.
[[nodiscard]] std::vector<int64_t> argdrop_smallest_magnitude(
    const tensor::Tensor& values, const std::vector<int64_t>& candidates, int64_t k);

/// Among `candidates`, return the k with the LARGEST |values[i]| -- used
/// with gradient magnitudes to pick connections to grow (step 4).
/// Deterministic: ties break on lower index.
[[nodiscard]] std::vector<int64_t> arggrow_largest_magnitude(
    const tensor::Tensor& values, const std::vector<int64_t>& candidates, int64_t k);

/// Magnitude threshold such that exactly `keep` entries of |values| (over
/// all elements) are >= the threshold; used by magnitude pruning (LTH).
[[nodiscard]] float magnitude_threshold(const tensor::Tensor& values, int64_t keep);

}  // namespace ndsnn::sparse
