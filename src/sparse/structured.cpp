#include "sparse/structured.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace ndsnn::sparse {

void NmPattern::validate() const {
  if (m < 1 || n < 0 || n > m) {
    throw std::invalid_argument("NmPattern: need 0 <= n <= m, m >= 1");
  }
}

namespace {
/// Indices (within the group) that survive: the `keep` largest |values|.
void group_survivors(const float* group, int64_t size, int64_t keep,
                     std::vector<int64_t>& out) {
  out.clear();
  for (int64_t i = 0; i < size; ++i) out.push_back(i);
  std::nth_element(out.begin(), out.begin() + keep, out.end(),
                   [group](int64_t a, int64_t b) {
                     const float ma = std::fabs(group[a]), mb = std::fabs(group[b]);
                     if (ma != mb) return ma > mb;
                     return a < b;
                   });
  out.resize(static_cast<std::size_t>(keep));
}

int64_t tail_keep(const NmPattern& p, int64_t tail) {
  return std::min<int64_t>(
      tail, (p.n * tail + p.m - 1) / p.m);  // ceil(n * tail / m)
}
}  // namespace

void project_nm(tensor::Tensor& weights, const NmPattern& pattern) {
  pattern.validate();
  float* w = weights.data();
  const int64_t total = weights.numel();
  std::vector<int64_t> survivors;
  std::vector<char> keep_mask(static_cast<std::size_t>(pattern.m));
  for (int64_t base = 0; base < total; base += pattern.m) {
    const int64_t size = std::min<int64_t>(pattern.m, total - base);
    const int64_t keep = size == pattern.m ? pattern.n : tail_keep(pattern, size);
    group_survivors(w + base, size, keep, survivors);
    std::fill(keep_mask.begin(), keep_mask.end(), 0);
    for (const int64_t s : survivors) keep_mask[static_cast<std::size_t>(s)] = 1;
    for (int64_t i = 0; i < size; ++i) {
      if (!keep_mask[static_cast<std::size_t>(i)]) w[base + i] = 0.0F;
    }
  }
}

bool satisfies_nm(const tensor::Tensor& weights, const NmPattern& pattern) {
  pattern.validate();
  const float* w = weights.data();
  const int64_t total = weights.numel();
  for (int64_t base = 0; base < total; base += pattern.m) {
    const int64_t size = std::min<int64_t>(pattern.m, total - base);
    const int64_t budget = size == pattern.m ? pattern.n : tail_keep(pattern, size);
    int64_t nonzero = 0;
    for (int64_t i = 0; i < size; ++i) nonzero += w[base + i] != 0.0F;
    if (nonzero > budget) return false;
  }
  return true;
}

double nm_projection_loss(const tensor::Tensor& weights, const NmPattern& pattern) {
  pattern.validate();
  tensor::Tensor projected = weights;
  project_nm(projected, pattern);
  double total = 0.0, kept = 0.0;
  for (int64_t i = 0; i < weights.numel(); ++i) {
    total += std::fabs(weights.at(i));
    kept += std::fabs(projected.at(i));
  }
  if (total == 0.0) return 0.0;
  return 1.0 - kept / total;
}

double nm_sparsity(const NmPattern& pattern) {
  pattern.validate();
  return 1.0 - static_cast<double>(pattern.n) / static_cast<double>(pattern.m);
}

NmPattern parse_nm(const std::string& spec) {
  // Strictly digits:digits — stoll alone would accept whitespace and
  // signs ("2: 4", "+2:4"), contradicting the error message below.
  const auto all_digits = [](const std::string& s) {
    if (s.empty()) return false;
    for (const char c : s) {
      if (c < '0' || c > '9') return false;
    }
    return true;
  };
  const std::size_t colon = spec.find(':');
  if (colon == std::string::npos || !all_digits(spec.substr(0, colon)) ||
      !all_digits(spec.substr(colon + 1))) {
    throw std::invalid_argument("parse_nm: expected \"N:M\", got '" + spec + "'");
  }
  NmPattern pattern;
  try {
    pattern.n = std::stoll(spec.substr(0, colon));
    pattern.m = std::stoll(spec.substr(colon + 1));
  } catch (const std::exception&) {  // out-of-range digits
    throw std::invalid_argument("parse_nm: expected \"N:M\", got '" + spec + "'");
  }
  pattern.validate();
  return pattern;
}

}  // namespace ndsnn::sparse
