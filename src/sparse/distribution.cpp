#include "sparse/distribution.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ndsnn::sparse {

LayerDims LayerDims::from_shape(const tensor::Shape& shape) {
  LayerDims d;
  if (shape.rank() == 2) {
    d.fan_out = shape.dim(0);
    d.fan_in = shape.dim(1);
    d.kernel_h = 1;
    d.kernel_w = 1;
  } else if (shape.rank() == 4) {
    d.fan_out = shape.dim(0);
    d.fan_in = shape.dim(1);
    d.kernel_h = shape.dim(2);
    d.kernel_w = shape.dim(3);
  } else {
    throw std::invalid_argument("LayerDims: expected rank-2 or rank-4 weight, got " +
                                shape.str());
  }
  d.numel = shape.numel();
  return d;
}

std::vector<double> erk_distribution(const std::vector<LayerDims>& layers,
                                     double overall) {
  if (layers.empty()) throw std::invalid_argument("erk_distribution: no layers");
  if (overall < 0.0 || overall >= 1.0) {
    throw std::invalid_argument("erk_distribution: overall sparsity must be in [0, 1)");
  }

  // Target active parameter budget.
  int64_t total = 0;
  for (const auto& l : layers) total += l.numel;
  const double budget = (1.0 - overall) * static_cast<double>(total);

  // Raw ERK score per layer: (fan_in + fan_out + kh + kw) / numel.
  // Density_l = eps * score_l, with eps solving sum(density_l * numel_l) =
  // budget. Layers whose density would exceed 1 are clamped dense and eps
  // re-solved over the rest (same iterative scheme as Evci et al.).
  const std::size_t n = layers.size();
  std::vector<double> score(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& l = layers[i];
    score[i] = static_cast<double>(l.fan_in + l.fan_out + l.kernel_h + l.kernel_w) /
               static_cast<double>(l.numel);
  }

  std::vector<bool> dense(n, false);
  std::vector<double> density(n, 0.0);
  for (;;) {
    double dense_params = 0.0;
    double weighted_score = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (dense[i]) {
        dense_params += static_cast<double>(layers[i].numel);
      } else {
        weighted_score += score[i] * static_cast<double>(layers[i].numel);
      }
    }
    if (weighted_score <= 0.0) break;  // everything clamped
    const double eps = (budget - dense_params) / weighted_score;
    bool clamped_new = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (dense[i]) continue;
      if (eps * score[i] >= 1.0) {
        dense[i] = true;
        clamped_new = true;
      }
    }
    if (!clamped_new) {
      for (std::size_t i = 0; i < n; ++i) {
        density[i] = dense[i] ? 1.0 : std::max(0.0, eps * score[i]);
      }
      break;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (dense[i]) density[i] = 1.0;
  }

  std::vector<double> sparsity(n);
  for (std::size_t i = 0; i < n; ++i) {
    sparsity[i] = std::clamp(1.0 - density[i], 0.0, 1.0);
  }
  return sparsity;
}

std::vector<double> uniform_distribution(const std::vector<LayerDims>& layers,
                                         double overall) {
  if (overall < 0.0 || overall >= 1.0) {
    throw std::invalid_argument("uniform_distribution: overall sparsity must be in [0, 1)");
  }
  return std::vector<double>(layers.size(), overall);
}

double overall_sparsity(const std::vector<LayerDims>& layers,
                        const std::vector<double>& per_layer) {
  if (layers.size() != per_layer.size()) {
    throw std::invalid_argument("overall_sparsity: size mismatch");
  }
  double zeros = 0.0;
  int64_t total = 0;
  for (std::size_t i = 0; i < layers.size(); ++i) {
    zeros += per_layer[i] * static_cast<double>(layers[i].numel);
    total += layers[i].numel;
  }
  return zeros / static_cast<double>(total);
}

}  // namespace ndsnn::sparse
