// Binary sparsity mask over one weight tensor.
//
// The mask mirrors the weight shape; 1 marks an active (trainable)
// connection, 0 a pruned one. Sparse-training methods mutate the mask and
// re-apply it to weights and gradients after every optimizer step.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/random.hpp"
#include "tensor/tensor.hpp"

namespace ndsnn::sparse {

class Mask {
 public:
  /// Fully dense mask matching `shape`.
  explicit Mask(tensor::Shape shape);

  /// Mask with exactly `active` ones placed uniformly at random.
  Mask(tensor::Shape shape, int64_t active, tensor::Rng& rng);

  [[nodiscard]] const tensor::Shape& shape() const { return shape_; }
  [[nodiscard]] int64_t numel() const { return static_cast<int64_t>(bits_.size()); }

  [[nodiscard]] bool test(int64_t i) const { return bits_[static_cast<std::size_t>(i)] != 0; }
  void set(int64_t i, bool on) { bits_[static_cast<std::size_t>(i)] = on ? 1 : 0; }

  /// Number of active (1) entries.
  [[nodiscard]] int64_t active_count() const;
  /// Fraction of zeros, theta in [0, 1].
  [[nodiscard]] double sparsity() const;

  /// Zero out weight entries where the mask is 0.
  void apply(tensor::Tensor& weights) const;

  /// Indices of active / inactive entries.
  [[nodiscard]] std::vector<int64_t> active_indices() const;
  [[nodiscard]] std::vector<int64_t> inactive_indices() const;

  /// Bulk flips. Throw std::invalid_argument if an index is already in the
  /// requested state (drop of a dropped weight indicates a logic error
  /// upstream).
  void deactivate(const std::vector<int64_t>& indices);
  void activate(const std::vector<int64_t>& indices);

  [[nodiscard]] const std::vector<uint8_t>& bits() const { return bits_; }

 private:
  tensor::Shape shape_;
  std::vector<uint8_t> bits_;
};

}  // namespace ndsnn::sparse
