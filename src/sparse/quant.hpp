// Quantised value planes for the sparse execution formats (Sec. III-D).
//
// Csr::storage_bits has always *accounted* 8/4-bit weight storage; this
// module makes the runtime actually execute it. A QuantPlane replaces
// the fp32 value array of a Csr/Bcsr with int8 codes (or two packed
// int4 codes per byte) plus one scale/zero-point per *group* — a CSR
// row, or a stored BCSR block — so the kernels touch 4x/8x fewer value
// bytes and dequantise once per output instead of once per term.
//
// Zero-point convention: real 0.0 always maps to an exact code
// (q == zero), so pruned entries and BCSR padding decode back to exact
// zeros in every mode. The default symmetric mode pins zero == 0, which
// is what the runtime's compile pass emits (weights are near-symmetric
// and a nonzero zero-point costs a second accumulator per output); the
// affine mode is kept for round-trip generality and is exercised by the
// unit tests.
//
// Error contract: with per-group scale s, every reconstructed value is
// within s/2 of its fp32 source, so any quantised kernel output differs
// from its fp32 counterpart by at most sum_k (s_k / 2) * |x_k| over the
// terms it accumulates. tests/sparse/quant_test.cpp asserts exactly
// this bound; the runtime-level tolerances derived from it are
// documented in README.md (runtime precision section).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace ndsnn::sparse {

/// Bit width of a value plane. kFp32 means "no quantisation".
enum class Precision : uint8_t { kFp32 = 0, kInt8 = 1, kInt4 = 2 };

[[nodiscard]] const char* precision_tag(Precision p);     // "fp32" | "int8" | "int4"
[[nodiscard]] int64_t precision_value_bits(Precision p);  // 32 | 8 | 4

/// Parse "fp32" / "int8" / "int4" (CLI surface). Throws
/// std::invalid_argument on anything else.
[[nodiscard]] Precision parse_precision(const std::string& s);

/// Quantised value array: `value_count` codes grouped into contiguous
/// runs that share one scale/zero-point (group g of a Csr is row g, of
/// a Bcsr the g-th stored block). int8 codes live in q8; int4 codes are
/// packed two per byte in q4 (value k in byte k/2, even k in the low
/// nibble), sign-extended from [-8, 7].
struct QuantPlane {
  Precision precision = Precision::kFp32;
  int64_t value_count = 0;
  std::vector<int8_t> q8;
  std::vector<uint8_t> q4;
  std::vector<float> scale;  ///< one per group
  std::vector<int8_t> zero;  ///< one per group (all 0 in symmetric mode)
  /// True when every group shares one plane-wide scale/zero-point
  /// (still replicated per group so kernels index scale[g] uniformly).
  /// This is what licenses the binary-spike gather fast path: with a
  /// j-independent scale, {0,1} activations let spmv_gather sum raw
  /// codes in int32 and dequantise once per output.
  bool uniform = false;
  /// > 0: the groups are fixed-size runs of this many codes over the
  /// value array (power of two; group of value k is k >> log2(size),
  /// crossing row/block boundaries), finer than the structural per-row
  /// grouping — the CompileOptions::quant_group_size scheme that lets
  /// int4 localize its scales. Grouped planes are always symmetric
  /// (every zero-point 0), so kernels fold scale[k >> shift] straight
  /// into the code. 0 means structural groups (dequant's `group`
  /// argument indexes scale/zero directly). Mutually exclusive with
  /// `uniform`.
  int64_t group_size = 0;

  [[nodiscard]] bool present() const { return precision != Precision::kFp32; }

  /// log2(group_size) when the plane is fixed-size grouped, else -1 —
  /// the shift the hot kernels hoist out of their loops.
  [[nodiscard]] int group_shift() const {
    if (group_size <= 0) return -1;
    int s = 0;
    while ((int64_t{1} << s) < group_size) ++s;
    return s;
  }

  /// Raw signed code of value k (int8 or sign-extended int4).
  [[nodiscard]] int8_t code(int64_t k) const {
    if (precision == Precision::kInt8) return q8[static_cast<std::size_t>(k)];
    const uint8_t byte = q4[static_cast<std::size_t>(k >> 1)];
    const auto nibble = static_cast<uint8_t>((k & 1) != 0 ? byte >> 4 : byte & 0xF);
    return static_cast<int8_t>(static_cast<int8_t>(nibble << 4) >> 4);
  }

  /// Reconstructed fp32 value of value k in group g. On a fixed-size
  /// grouped plane the group is derived from k and the argument is
  /// ignored, so per-row/per-block callers stay correct unchanged.
  [[nodiscard]] float dequant(int64_t group, int64_t k) const {
    const auto g = static_cast<std::size_t>(group_size > 0 ? k / group_size : group);
    return scale[g] * static_cast<float>(static_cast<int>(code(k)) - static_cast<int>(zero[g]));
  }

  /// Bytes this plane actually occupies (codes + scales + zero-points).
  [[nodiscard]] int64_t memory_bytes() const;
};

/// Quantise `values` into groups bounded by `group_ptr` (group g covers
/// [group_ptr[g], group_ptr[g+1]); the Csr row_ptr layout). Symmetric
/// mode uses scale = max|v| / qmax and zero = 0; affine mode maps
/// [min(v, 0), max(v, 0)] onto the signed code range with a zero-point.
/// `max_abs_error`, when non-null, receives the largest |dequant - v|.
/// With `uniform_scale` every group takes one plane-wide scale/zero
/// (computed over all values, replicated per group, QuantPlane::uniform
/// set): the per-value error bound becomes scale/2 with
/// scale = global max|v| / qmax — the same 1/(2*qmax) bound *relative
/// to the global max* that per-group scaling gives, traded for the
/// int32 binary-spike gather fast path.
[[nodiscard]] QuantPlane quantize_grouped(const float* values, const int64_t* group_ptr,
                                          int64_t groups, Precision precision,
                                          bool symmetric = true,
                                          float* max_abs_error = nullptr,
                                          bool uniform_scale = false);

/// Same with equal-sized groups of `group_size` values (the Bcsr stored
/// block layout). value_count = groups * group_size.
[[nodiscard]] QuantPlane quantize_fixed(const float* values, int64_t groups,
                                        int64_t group_size, Precision precision,
                                        bool symmetric = true,
                                        float* max_abs_error = nullptr,
                                        bool uniform_scale = false);

/// Largest |dequant(quant(w)) - w| over the entries with |w| > threshold
/// of the lowered [dim(0), numel/dim(0)] weight tensor, quantised with
/// one symmetric scale per lowered row, divided by the global max |w|
/// (0 when the tensor has no surviving entry, or for kFp32). This is
/// the measurement the runtime's precision heuristic bounds: per-row
/// symmetric int8 lands near 1/254 ~ 0.4%, int4 near 1/14 ~ 7%.
/// `uniform_scale` measures one plane-wide scale instead (the scheme
/// the event-path gather structures actually build): same 1/(2*qmax)
/// worst case, but the *measured* value can sit anywhere under it, so
/// the heuristic must measure the scheme it will emit.
///
/// `group_size` > 0 measures the fixed-size-group scheme instead
/// (QuantPlane::group_size): surviving entries taken in row-major order,
/// chunked into `group_size`-wide symmetric groups exactly as
/// Csr::quantize will emit them. The reported statistic becomes the
/// *mean* |dequant - w| / global max |w| rather than the max: whichever
/// group contains the global max keeps the structural 1/(2*qmax) worst
/// case, so the max statistic could never drop below the per-row
/// floor no matter how fine the groups — the mean is what grouping
/// actually improves, and is what the auto-precision bound compares
/// when a group size is configured.
[[nodiscard]] float relative_quant_error(const tensor::Tensor& weights, Precision precision,
                                         float threshold = 0.0F,
                                         bool uniform_scale = false,
                                         int64_t group_size = 0);

/// Quantise-dequantise the tensor in place with one symmetric scale per
/// lowered row — the exact transformation Csr::quantize applies to the
/// values it stores (zeros are fixed points). Re-quantising the result
/// reproduces the same codes, which is what lets the differential
/// harness compare quantised plans against fp32 plans of a
/// fake-quantised network. Returns the per-row scales (the checkpoint
/// v3 record stores them).
std::vector<float> fake_quantize_rows(tensor::Tensor& weights, Precision precision);

}  // namespace ndsnn::sparse
