// Internal declarations of the hand-written intrinsic kernel bodies
// (util::simd::Tier::kAvx2). Not part of the public sparse API — the
// dispatching drivers in csr.cpp / bcsr.cpp / matmul.cpp are the only
// callers.
//
// Contract: every fp32 body here computes the identical per-output
// accumulation sequence as its scalar reference (ascending nonzero /
// column order, explicit mul-then-add — never FMA — for the float
// chains, exact double products for the double chains), so results are
// bitwise identical across tiers. That only holds because the build
// pins -ffp-contract=off (see CMakeLists.txt): otherwise -O2 would
// contract the *scalar* bodies into FMAs these bodies deliberately
// avoid. Quantised bodies (i8/i4) have no bitwise contract and use
// FMA + reassociated accumulator chains freely.
//
// The batch-panel spmm_t bodies read B through its transpose
// bt = Bᵀ [cols x m] (row-major, row stride m): one weight broadcast
// then serves 8 batch lanes from a contiguous load. Callers build bt
// once per call (transpose_f32) before fanning the row ranges out to
// the pool.
//
// All bodies are compiled with __attribute__((target("avx2,fma"))) so
// a generic x86-64 build still links and runs — cpuinfo's detected()
// simply never selects the tier on hardware without AVX2. On non-x86
// builds the functions are stubbed out and built_with_avx2() is false.
// AArch64 note: the vector tier's gcc-vector-extension and
// autovectorized bodies compile directly to NEON, which is why there
// are no hand-written NEON twins here; see cpuinfo.hpp.
#pragma once

#include <cstdint>

namespace ndsnn::sparse::simd {

/// True when this build contains the AVX2 intrinsic bodies (x86-64 with
/// a compiler supporting target attributes). Runtime capability is a
/// separate question — util::simd::detected() answers it.
bool built_with_avx2();

/// out[c * rows + r] = in[r * cols + c]. Plain strided copy (no FP
/// ops, trivially bitwise); exposed so the spmm_t drivers can build bt
/// in parallel column strips.
void transpose_f32(const float* in, int64_t rows, int64_t cols, float* out,
                   int64_t c0, int64_t c1);

/// fp32 Csr::spmm rows [r0, r1): C[r, :] += v * B[col, :] per nonzero,
/// ascending, with the C row kept in registers across 4 nonzeros per
/// pass (the win over the per-nonzero autovectorized axpy).
void csr_spmm_f32_avx2(const int64_t* row_ptr, const int32_t* col_idx,
                       const float* values, int64_t r0, int64_t r1,
                       const float* bp, int64_t n, float* cp);

/// fp32 Csr::spmm_t rows [r0, r1): cp[i * out_stride + r] =
/// float(sum_k (double)v_k * (double)bt[col_k * m + i]), 8 batch lanes
/// per pass in two 4-wide double chains.
void csr_spmm_t_f32_avx2(const int64_t* row_ptr, const int32_t* col_idx,
                         const float* values, int64_t r0, int64_t r1,
                         const float* bt, int64_t m, int64_t out_stride,
                         float* cp);

/// Quantised symmetric (all zero-points 0) Csr::spmm_t. group_shift < 0:
/// per-row scales, scale[r] applied once per output. group_shift >= 0:
/// sub-row grouped plane (quant_group_size), scale[k >> group_shift]
/// folded into each code — the "SIMD kernels read group scales
/// natively" path.
void csr_spmm_t_i8_avx2(const int64_t* row_ptr, const int32_t* col_idx,
                        const int8_t* q8, const float* scale, int group_shift,
                        int64_t r0, int64_t r1, const float* bt, int64_t m,
                        int64_t out_stride, float* cp);
void csr_spmm_t_i4_avx2(const int64_t* row_ptr, const int32_t* col_idx,
                        const uint8_t* q4, const float* scale, int group_shift,
                        int64_t r0, int64_t r1, const float* bt, int64_t m,
                        int64_t out_stride, float* cp);

/// fp32 Bcsr::spmm_t block rows [ib0, ib1): same double-chain order as
/// the scalar worker (ascending block, ascending in-block column per
/// output row), 8 batch lanes per pass.
void bcsr_spmm_t_f32_avx2(const int64_t* block_row_ptr,
                          const int32_t* block_col_idx, const float* values,
                          int64_t rows, int64_t cols, int64_t br, int64_t bc,
                          const float* bt, int64_t m, float* cp, int64_t ib0,
                          int64_t ib1);

/// Dense matmul_nt rows [i0, i1): c[i, j] += float(double chain over kk)
/// with bt = Bᵀ [k x n] built by the caller; contiguous 8-wide loads
/// and stores over j.
void matmul_nt_f32_avx2(const float* a, const float* bt, int64_t i0,
                        int64_t i1, int64_t k, int64_t n, float* c);

/// Dense matmul rows [i0, i1): the i-k-j axpy with the zero-skip
/// preserved (pruned weights must stay exact no-ops — adding an
/// explicit 0 term could flip a -0.0 output) and the C row held across
/// up to 4 surviving nonzeros per pass.
void matmul_f32_avx2(const float* a, const float* b, int64_t i0, int64_t i1,
                     int64_t k, int64_t n, float* c);

}  // namespace ndsnn::sparse::simd
