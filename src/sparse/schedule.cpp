#include "sparse/schedule.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace ndsnn::sparse {

SparsityRamp::SparsityRamp(double theta_initial, double theta_final, int64_t t0,
                           int64_t delta_t, int64_t rounds, double exponent)
    : theta_i_(theta_initial),
      theta_f_(theta_final),
      t0_(t0),
      delta_t_(delta_t),
      rounds_(rounds),
      exponent_(exponent) {
  if (theta_i_ < 0.0 || theta_i_ >= 1.0 || theta_f_ < 0.0 || theta_f_ >= 1.0) {
    throw std::invalid_argument("SparsityRamp: sparsities must be in [0, 1)");
  }
  if (theta_i_ > theta_f_) {
    throw std::invalid_argument(
        "SparsityRamp: NDSNN requires theta_initial <= theta_final (non-zeros decrease)");
  }
  if (delta_t_ < 1 || rounds_ < 1 || t0_ < 0) {
    throw std::invalid_argument("SparsityRamp: need t0 >= 0, delta_t >= 1, rounds >= 1");
  }
  if (exponent_ <= 0.0) throw std::invalid_argument("SparsityRamp: exponent must be > 0");
}

double SparsityRamp::at(int64_t t) const {
  const auto span = static_cast<double>(rounds_ * delta_t_);
  double progress = static_cast<double>(t - t0_) / span;
  progress = std::clamp(progress, 0.0, 1.0);
  return theta_f_ + (theta_i_ - theta_f_) * std::pow(1.0 - progress, exponent_);
}

DeathRateSchedule::DeathRateSchedule(double initial_rate, double min_rate, int64_t t0,
                                     int64_t delta_t, int64_t rounds)
    : d0_(initial_rate), dmin_(min_rate), t0_(t0), delta_t_(delta_t), rounds_(rounds) {
  if (d0_ < 0.0 || d0_ > 1.0 || dmin_ < 0.0 || dmin_ > d0_) {
    throw std::invalid_argument("DeathRateSchedule: need 0 <= d_min <= d_0 <= 1");
  }
  if (delta_t_ < 1 || rounds_ < 1 || t0_ < 0) {
    throw std::invalid_argument("DeathRateSchedule: need t0 >= 0, delta_t >= 1, rounds >= 1");
  }
}

double DeathRateSchedule::at(int64_t t) const {
  const auto span = static_cast<double>(rounds_ * delta_t_);
  double progress = static_cast<double>(t - t0_) / span;
  progress = std::clamp(progress, 0.0, 1.0);
  return dmin_ + 0.5 * (d0_ - dmin_) * (1.0 + std::cos(std::numbers::pi * progress));
}

DropGrowCounts drop_grow_counts(int64_t layer_numel, int64_t active_now, double death_rate,
                                double theta_target) {
  if (layer_numel < 1) throw std::invalid_argument("drop_grow_counts: empty layer");
  if (active_now < 0 || active_now > layer_numel) {
    throw std::invalid_argument("drop_grow_counts: active_now out of range");
  }
  if (death_rate < 0.0 || death_rate > 1.0) {
    throw std::invalid_argument("drop_grow_counts: death_rate out of range");
  }
  if (theta_target < 0.0 || theta_target >= 1.0) {
    throw std::invalid_argument("drop_grow_counts: theta_target out of range");
  }

  DropGrowCounts c;
  c.active_before = active_now;  // Eq. 6

  // Eq. 7 gives D = d_t * N_pre. When the Eq. 4 ramp demands a larger cut
  // than the death rate alone provides (few rounds / small d_t), the drop
  // is raised to the ramp-required amount so the sparsity schedule is
  // always honoured; d_t then acts as the exploration floor.
  const auto target_active =
      static_cast<int64_t>(std::llround((1.0 - theta_target) * static_cast<double>(layer_numel)));
  const auto rate_drop =
      static_cast<int64_t>(death_rate * static_cast<double>(active_now));
  const int64_t required_drop = active_now - target_active;
  c.drop = std::max(rate_drop, required_drop);
  c.drop = std::clamp<int64_t>(c.drop, 0, active_now);
  c.active_after = c.active_before - c.drop;  // Eq. 8

  // Eq. 9: G = N - N_post - theta_t * N  (target active minus current).
  int64_t grow = target_active - c.active_after;
  // NDSNN invariant: never grow more than was dropped (non-zeros only
  // decrease) and never beyond the inactive pool.
  grow = std::clamp<int64_t>(grow, 0, c.drop);
  grow = std::min(grow, layer_numel - c.active_after);
  c.grow = grow;
  return c;
}

}  // namespace ndsnn::sparse
