// Layer-wise sparsity distributions.
//
// ERK (Erdos-Renyi-Kernel, Evci et al. 2020 / Mocanu et al. 2018): the
// density of layer l scales with (n_{l-1} + n_l + w_l + h_l) /
// (n_{l-1} * n_l * w_l * h_l), so small/thin layers stay denser. The
// paper uses ERK for both the initial distribution Theta_i and the final
// distribution Theta_f (Sec. III-C, step 1).
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/shape.hpp"

namespace ndsnn::sparse {

/// Dimensions of one prunable layer as seen by the distribution.
struct LayerDims {
  int64_t fan_in = 0;    ///< n_{l-1} (input channels / features)
  int64_t fan_out = 0;   ///< n_l (output channels / features)
  int64_t kernel_h = 1;  ///< 1 for linear layers
  int64_t kernel_w = 1;
  int64_t numel = 0;     ///< total weight elements

  /// Build from a weight tensor shape: [out, in] or [F, C, KH, KW].
  [[nodiscard]] static LayerDims from_shape(const tensor::Shape& shape);
};

/// Per-layer sparsities theta^l such that the parameter-weighted average
/// equals `overall_sparsity`, with ERK scaling. Result clamped to [0, 1).
[[nodiscard]] std::vector<double> erk_distribution(const std::vector<LayerDims>& layers,
                                                   double overall_sparsity);

/// Uniform: every layer gets exactly `overall_sparsity`.
[[nodiscard]] std::vector<double> uniform_distribution(const std::vector<LayerDims>& layers,
                                                       double overall_sparsity);

/// Parameter-weighted average sparsity (sanity-check helper).
[[nodiscard]] double overall_sparsity(const std::vector<LayerDims>& layers,
                                      const std::vector<double>& per_layer);

}  // namespace ndsnn::sparse
