#include "sparse/memory_model.hpp"

#include <cmath>
#include <stdexcept>

namespace ndsnn::sparse {

void MemoryModelInput::validate() const {
  if (total_weights < 0) throw std::invalid_argument("MemoryModel: negative weight count");
  if (sparsity < 0.0 || sparsity > 1.0) {
    throw std::invalid_argument("MemoryModel: sparsity must be in [0, 1]");
  }
  if (timesteps < 1) throw std::invalid_argument("MemoryModel: timesteps must be >= 1");
  if (weight_bits < 1 || index_bits < 1) {
    throw std::invalid_argument("MemoryModel: bit widths must be >= 1");
  }
}

int64_t footprint_bits_approx(const MemoryModelInput& in) {
  in.validate();
  const double n = static_cast<double>(in.total_weights);
  const double t = static_cast<double>(in.timesteps);
  const double bits = (1.0 - in.sparsity) *
                      ((1.0 + t) * n * static_cast<double>(in.weight_bits) +
                       n * static_cast<double>(in.index_bits));
  return static_cast<int64_t>(std::llround(bits));
}

int64_t footprint_bits_exact(const MemoryModelInput& in) {
  int64_t ptr_bits = 0;
  for (const int64_t f : in.filters_per_layer) {
    if (f < 0) throw std::invalid_argument("MemoryModel: negative filter count");
    ptr_bits += (f + 1) * in.index_bits;
  }
  return footprint_bits_approx(in) + ptr_bits;
}

double footprint_mbytes_approx(const MemoryModelInput& in) {
  return static_cast<double>(footprint_bits_approx(in)) / 8.0 / 1024.0 / 1024.0;
}

}  // namespace ndsnn::sparse
