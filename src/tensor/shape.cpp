#include "tensor/shape.hpp"

#include <sstream>
#include <stdexcept>

namespace ndsnn::tensor {

Shape::Shape(std::initializer_list<int64_t> dims) : dims_(dims) { validate(); }

Shape::Shape(std::vector<int64_t> dims) : dims_(std::move(dims)) { validate(); }

void Shape::validate() const {
  for (const int64_t d : dims_) {
    if (d < 1) {
      throw std::invalid_argument("Shape: all dims must be >= 1, got " + str());
    }
  }
}

int64_t Shape::dim(int64_t i) const {
  if (i < 0) i += rank();
  if (i < 0 || i >= rank()) {
    throw std::out_of_range("Shape::dim: index " + std::to_string(i) + " out of range for " + str());
  }
  return dims_[static_cast<std::size_t>(i)];
}

int64_t Shape::numel() const {
  int64_t n = 1;
  for (const int64_t d : dims_) n *= d;
  return n;
}

std::vector<int64_t> Shape::strides() const {
  std::vector<int64_t> s(dims_.size());
  int64_t acc = 1;
  for (std::size_t i = dims_.size(); i-- > 0;) {
    s[i] = acc;
    acc *= dims_[i];
  }
  return s;
}

std::string Shape::str() const {
  std::ostringstream out;
  out << '[';
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i) out << ", ";
    out << dims_[i];
  }
  out << ']';
  return out.str();
}

}  // namespace ndsnn::tensor
