// Shape: dimension vector for dense row-major tensors.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace ndsnn::tensor {

/// Immutable-by-convention dimension list. Rank 0 denotes a scalar with
/// one element. All dimensions must be >= 1 (empty tensors are represented
/// explicitly by the code that needs them, never by zero dims).
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<int64_t> dims);
  explicit Shape(std::vector<int64_t> dims);

  [[nodiscard]] int64_t rank() const { return static_cast<int64_t>(dims_.size()); }
  [[nodiscard]] int64_t dim(int64_t i) const;
  [[nodiscard]] int64_t operator[](int64_t i) const { return dim(i); }

  /// Product of all dims; 1 for a scalar.
  [[nodiscard]] int64_t numel() const;

  [[nodiscard]] const std::vector<int64_t>& dims() const { return dims_; }

  /// Row-major strides (in elements, not bytes).
  [[nodiscard]] std::vector<int64_t> strides() const;

  [[nodiscard]] bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  [[nodiscard]] bool operator!=(const Shape& other) const { return !(*this == other); }

  /// "[2, 3, 4]"
  [[nodiscard]] std::string str() const;

 private:
  std::vector<int64_t> dims_;
  void validate() const;
};

}  // namespace ndsnn::tensor
