#include "tensor/matmul.hpp"

#include <stdexcept>
#include <vector>

#include "sparse/simd_kernels.hpp"

namespace ndsnn::tensor {

namespace simd = ndsnn::sparse::simd;

namespace {
void check_rank2(const Tensor& t, const char* name) {
  if (t.rank() != 2) {
    throw std::invalid_argument(std::string("matmul: ") + name + " must be rank-2, got " +
                                t.shape().str());
  }
}
}  // namespace

void matmul_acc(const Tensor& a, const Tensor& b, Tensor& c, util::ThreadPool* pool,
                util::simd::Tier tier) {
  check_rank2(a, "A");
  check_rank2(b, "B");
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  if (b.dim(0) != k || c.dim(0) != m || c.dim(1) != n) {
    throw std::invalid_argument("matmul_acc: shape mismatch A" + a.shape().str() + " B" +
                                b.shape().str() + " C" + c.shape().str());
  }
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  const bool avx2 = util::simd::resolve(tier) == util::simd::Tier::kAvx2 &&
                    simd::built_with_avx2() && n >= 8;
  // i-k-j ordering: unit-stride inner loop over B and C rows. Rows of C
  // are independent, so the pooled path hands each chunk a row range.
  const auto rows = [&](int64_t i0, int64_t i1) {
    if (avx2) {
      simd::matmul_f32_avx2(pa, pb, i0, i1, k, n, pc);
      return;
    }
    for (int64_t i = i0; i < i1; ++i) {
      float* crow = pc + i * n;
      const float* arow = pa + i * k;
      for (int64_t kk = 0; kk < k; ++kk) {
        const float aval = arow[kk];
        if (aval == 0.0F) continue;  // sparse weights: skip pruned entries
        const float* brow = pb + kk * n;
        for (int64_t j = 0; j < n; ++j) crow[j] += aval * brow[j];
      }
    }
  };
  util::parallel_even(pool, 0, m, m * k * n, rows);
}

Tensor matmul(const Tensor& a, const Tensor& b, util::ThreadPool* pool,
              util::simd::Tier tier) {
  Tensor c(Shape{a.dim(0), b.dim(1)});
  matmul_acc(a, b, c, pool, tier);
  return c;
}

void matmul_tn_acc(const Tensor& a, const Tensor& b, Tensor& c) {
  check_rank2(a, "A");
  check_rank2(b, "B");
  const int64_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  if (b.dim(0) != k || c.dim(0) != m || c.dim(1) != n) {
    throw std::invalid_argument("matmul_tn_acc: shape mismatch A" + a.shape().str() + " B" +
                                b.shape().str() + " C" + c.shape().str());
  }
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (int64_t kk = 0; kk < k; ++kk) {
    const float* arow = pa + kk * m;
    const float* brow = pb + kk * n;
    for (int64_t i = 0; i < m; ++i) {
      const float aval = arow[i];
      if (aval == 0.0F) continue;
      float* crow = pc + i * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += aval * brow[j];
    }
  }
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  Tensor c(Shape{a.dim(1), b.dim(1)});
  matmul_tn_acc(a, b, c);
  return c;
}

void matmul_nt_acc(const Tensor& a, const Tensor& b, Tensor& c, util::ThreadPool* pool,
                   util::simd::Tier tier) {
  check_rank2(a, "A");
  check_rank2(b, "B");
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  if (b.dim(1) != k || c.dim(0) != m || c.dim(1) != n) {
    throw std::invalid_argument("matmul_nt_acc: shape mismatch A" + a.shape().str() + " B" +
                                b.shape().str() + " C" + c.shape().str());
  }
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  if (util::simd::resolve(tier) == util::simd::Tier::kAvx2 && simd::built_with_avx2() &&
      n >= 8) {
    // Panel route: bt = Bᵀ [k, n] turns the per-output gather into
    // contiguous 8-wide loads/stores over j; the strided-copy transpose
    // costs one k*n pass against m*k*n worth of double chains. Each
    // output's chain is exact, so results stay bitwise identical to the
    // scalar gather.
    std::vector<float> bt(static_cast<std::size_t>(k * n));
    util::parallel_even(pool, 0, k, k * n, [&](int64_t k0, int64_t k1) {
      simd::transpose_f32(pb, n, k, bt.data(), k0, k1);
    });
    util::parallel_even(pool, 0, m, m * k * n, [&](int64_t i0, int64_t i1) {
      simd::matmul_nt_f32_avx2(pa, bt.data(), i0, i1, k, n, pc);
    });
    return;
  }
  const auto rows = [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      const float* arow = pa + i * k;
      float* crow = pc + i * n;
      for (int64_t j = 0; j < n; ++j) {
        const float* brow = pb + j * k;
        double acc = 0.0;
        for (int64_t kk = 0; kk < k; ++kk) acc += static_cast<double>(arow[kk]) * brow[kk];
        crow[j] += static_cast<float>(acc);
      }
    }
  };
  util::parallel_even(pool, 0, m, m * k * n, rows);
}

Tensor matmul_nt(const Tensor& a, const Tensor& b, util::ThreadPool* pool,
                 util::simd::Tier tier) {
  Tensor c(Shape{a.dim(0), b.dim(0)});
  matmul_nt_acc(a, b, c, pool, tier);
  return c;
}

}  // namespace ndsnn::tensor
