// Deterministic RNG used across the library.
//
// xoshiro256** seeded through SplitMix64, matching the reference
// implementations by Blackman & Vigna. Every component that needs
// randomness takes an `Rng&` (or a seed) explicitly so experiments are
// reproducible bit-for-bit across runs.
#pragma once

#include <cstdint>
#include <vector>

namespace ndsnn::tensor {

/// SplitMix64: seeds xoshiro and serves as a cheap stateless mixer.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}
  uint64_t next();

 private:
  uint64_t state_;
};

/// xoshiro256** 1.0 generator with convenience distributions.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Raw 64 random bits.
  uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform float in [lo, hi).
  float uniform(float lo, float hi);

  /// Uniform integer in [0, n). Requires n > 0.
  int64_t uniform_int(int64_t n);

  /// Standard normal (Box-Muller, cached second value).
  float normal();

  /// True with probability p.
  bool bernoulli(double p);

  /// Fisher-Yates shuffle of an index vector.
  void shuffle(std::vector<int64_t>& indices);

  /// Derive an independent child stream (for per-layer / per-worker RNGs).
  [[nodiscard]] Rng fork();

 private:
  uint64_t s_[4];
  bool has_cached_normal_ = false;
  float cached_normal_ = 0.0F;
};

}  // namespace ndsnn::tensor
