#include "tensor/tensor.hpp"

#include <cmath>
#include <stdexcept>

#include "tensor/random.hpp"

namespace ndsnn::tensor {

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)), data_(static_cast<std::size_t>(shape_.numel()), 0.0F) {}

Tensor::Tensor(Shape shape, float value)
    : shape_(std::move(shape)), data_(static_cast<std::size_t>(shape_.numel()), value) {}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : shape_(std::move(shape)), data_(std::move(values)) {
  if (static_cast<int64_t>(data_.size()) != shape_.numel()) {
    throw std::invalid_argument("Tensor: value count " + std::to_string(data_.size()) +
                                " != shape numel " + std::to_string(shape_.numel()));
  }
}

float& Tensor::at(int64_t r, int64_t c) {
  return data_[static_cast<std::size_t>(r * shape_.dim(1) + c)];
}

float Tensor::at(int64_t r, int64_t c) const {
  return data_[static_cast<std::size_t>(r * shape_.dim(1) + c)];
}

float& Tensor::at4(int64_t n, int64_t c, int64_t h, int64_t w) {
  const int64_t C = shape_.dim(1), H = shape_.dim(2), W = shape_.dim(3);
  return data_[static_cast<std::size_t>(((n * C + c) * H + h) * W + w)];
}

float Tensor::at4(int64_t n, int64_t c, int64_t h, int64_t w) const {
  const int64_t C = shape_.dim(1), H = shape_.dim(2), W = shape_.dim(3);
  return data_[static_cast<std::size_t>(((n * C + c) * H + h) * W + w)];
}

Tensor Tensor::reshaped(Shape new_shape) const {
  if (new_shape.numel() != numel()) {
    throw std::invalid_argument("Tensor::reshaped: numel mismatch " + shape_.str() + " -> " +
                                new_shape.str());
  }
  Tensor out(std::move(new_shape), data_);
  return out;
}

void Tensor::fill(float value) {
  for (auto& x : data_) x = value;
}

void Tensor::fill_uniform(Rng& rng, float lo, float hi) {
  for (auto& x : data_) x = rng.uniform(lo, hi);
}

void Tensor::fill_normal(Rng& rng, float mean, float stddev) {
  for (auto& x : data_) x = mean + stddev * rng.normal();
}

void Tensor::fill_kaiming(Rng& rng, int64_t fan_in) {
  if (fan_in < 1) throw std::invalid_argument("fill_kaiming: fan_in must be >= 1");
  const float stddev = std::sqrt(2.0F / static_cast<float>(fan_in));
  fill_normal(rng, 0.0F, stddev);
}

double Tensor::sum() const {
  double acc = 0.0;
  for (const float x : data_) acc += x;
  return acc;
}

int64_t Tensor::count_zeros() const {
  int64_t n = 0;
  for (const float x : data_) n += (x == 0.0F) ? 1 : 0;
  return n;
}

float Tensor::abs_max() const {
  float m = 0.0F;
  for (const float x : data_) m = std::max(m, std::fabs(x));
  return m;
}

}  // namespace ndsnn::tensor
