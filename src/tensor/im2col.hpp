// im2col / col2im lowering for 2-D convolution.
//
// Convolution is computed as GEMM over patch matrices:
//   X [N, C, H, W]  -- im2col -->  cols [C*KH*KW, N*OH*OW]
//   W [F, C*KH*KW]  * cols  ->  Y [F, N*OH*OW]  -> reshape [N, F, OH, OW]
// col2im is the adjoint, used for input gradients.
#pragma once

#include "tensor/tensor.hpp"

namespace ndsnn::tensor {

/// Geometry of a conv2d application.
struct ConvGeometry {
  int64_t batch = 0;
  int64_t in_channels = 0;
  int64_t in_h = 0, in_w = 0;
  int64_t kernel_h = 0, kernel_w = 0;
  int64_t stride = 1;
  int64_t padding = 0;

  [[nodiscard]] int64_t out_h() const { return (in_h + 2 * padding - kernel_h) / stride + 1; }
  [[nodiscard]] int64_t out_w() const { return (in_w + 2 * padding - kernel_w) / stride + 1; }
  /// Rows of the patch matrix: C*KH*KW.
  [[nodiscard]] int64_t patch_rows() const { return in_channels * kernel_h * kernel_w; }
  /// Cols of the patch matrix: N*OH*OW.
  [[nodiscard]] int64_t patch_cols() const { return batch * out_h() * out_w(); }

  /// Throws when kernel/stride/padding are inconsistent with the input.
  void validate() const;
};

/// Lower input [N, C, H, W] into the patch matrix [C*KH*KW, N*OH*OW].
[[nodiscard]] Tensor im2col(const Tensor& input, const ConvGeometry& g);

/// Adjoint of im2col: scatter-add patch matrix back to [N, C, H, W].
[[nodiscard]] Tensor col2im(const Tensor& cols, const ConvGeometry& g);

}  // namespace ndsnn::tensor
