#include "tensor/random.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace ndsnn::tensor {

uint64_t SplitMix64::next() {
  uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
inline uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

uint64_t Rng::next_u64() {
  const uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform01() {
  // 53 random mantissa bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

float Rng::uniform(float lo, float hi) {
  return lo + static_cast<float>(uniform01()) * (hi - lo);
}

int64_t Rng::uniform_int(int64_t n) {
  if (n <= 0) throw std::invalid_argument("Rng::uniform_int: n must be > 0");
  // Rejection-free modulo is fine here: n << 2^64 so bias is negligible for
  // simulation purposes, but we keep the debiased loop for exactness.
  const uint64_t un = static_cast<uint64_t>(n);
  const uint64_t limit = UINT64_MAX - UINT64_MAX % un;
  uint64_t x = next_u64();
  while (x >= limit) x = next_u64();
  return static_cast<int64_t>(x % un);
}

float Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller transform.
  double u1 = uniform01();
  while (u1 <= 1e-12) u1 = uniform01();
  const double u2 = uniform01();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = static_cast<float>(radius * std::sin(angle));
  has_cached_normal_ = true;
  return static_cast<float>(radius * std::cos(angle));
}

bool Rng::bernoulli(double p) { return uniform01() < p; }

void Rng::shuffle(std::vector<int64_t>& indices) {
  for (std::size_t i = indices.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(uniform_int(static_cast<int64_t>(i)));
    std::swap(indices[i - 1], indices[j]);
  }
}

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace ndsnn::tensor
