// Elementwise and reduction operations on Tensor.
//
// Free functions, out-of-place unless suffixed `_` (PyTorch-style in-place
// marker). Shape mismatches throw std::invalid_argument.
#pragma once

#include <functional>

#include "tensor/tensor.hpp"

namespace ndsnn::tensor {

/// c = a + b
[[nodiscard]] Tensor add(const Tensor& a, const Tensor& b);
/// c = a - b
[[nodiscard]] Tensor sub(const Tensor& a, const Tensor& b);
/// c = a * b (Hadamard)
[[nodiscard]] Tensor mul(const Tensor& a, const Tensor& b);
/// c = a * s
[[nodiscard]] Tensor scale(const Tensor& a, float s);

/// a += b
void add_(Tensor& a, const Tensor& b);
/// a -= b
void sub_(Tensor& a, const Tensor& b);
/// a *= b (Hadamard)
void mul_(Tensor& a, const Tensor& b);
/// a *= s
void scale_(Tensor& a, float s);
/// a += s * b  (axpy)
void axpy_(Tensor& a, float s, const Tensor& b);

/// Apply `fn` to each element, out-of-place.
[[nodiscard]] Tensor map(const Tensor& a, const std::function<float(float)>& fn);
/// Apply `fn` in place.
void map_(Tensor& a, const std::function<float(float)>& fn);

/// out[r, c] += bias[c] for a [M, C] matrix: one contiguous row-pointer
/// sweep per row (shared by nn::Linear and the sparse inference runtime).
void add_row_bias_(Tensor& out, const Tensor& bias);

/// out[m, c, h, w] += bias[c] for a [M, C, H, W] activation: each (m, c)
/// plane gets one constant added in a single contiguous sweep (shared by
/// nn::Conv2d and the sparse inference runtime).
void add_channel_bias_(Tensor& out, const Tensor& bias);

/// Row-wise softmax of a [N, C] matrix (numerically stabilized).
[[nodiscard]] Tensor softmax_rows(const Tensor& logits);

/// argmax over each row of a [N, C] matrix -> N indices.
[[nodiscard]] std::vector<int64_t> argmax_rows(const Tensor& m);

/// Mean of all elements.
[[nodiscard]] double mean(const Tensor& a);

/// L2 norm of all elements.
[[nodiscard]] double l2_norm(const Tensor& a);

/// Throws unless a and b share a shape.
void check_same_shape(const Tensor& a, const Tensor& b, const char* op);

}  // namespace ndsnn::tensor
