#include "tensor/im2col.hpp"

#include <stdexcept>

namespace ndsnn::tensor {

void ConvGeometry::validate() const {
  if (batch < 1 || in_channels < 1 || in_h < 1 || in_w < 1) {
    throw std::invalid_argument("ConvGeometry: input dims must be >= 1");
  }
  if (kernel_h < 1 || kernel_w < 1 || stride < 1 || padding < 0) {
    throw std::invalid_argument("ConvGeometry: bad kernel/stride/padding");
  }
  if (in_h + 2 * padding < kernel_h || in_w + 2 * padding < kernel_w) {
    throw std::invalid_argument("ConvGeometry: kernel larger than padded input");
  }
  // Floor-division output size (standard conv semantics): trailing rows or
  // columns that do not fit a full stride are simply not visited.
}

Tensor im2col(const Tensor& input, const ConvGeometry& g) {
  g.validate();
  if (input.rank() != 4 || input.dim(0) != g.batch || input.dim(1) != g.in_channels ||
      input.dim(2) != g.in_h || input.dim(3) != g.in_w) {
    throw std::invalid_argument("im2col: input shape " + input.shape().str() +
                                " does not match geometry");
  }
  const int64_t oh = g.out_h(), ow = g.out_w();
  Tensor cols(Shape{g.patch_rows(), g.patch_cols()});
  const float* src = input.data();
  float* dst = cols.data();
  const int64_t cols_n = g.patch_cols();
  const int64_t hw = g.in_h * g.in_w;
  const int64_t chw = g.in_channels * hw;

  for (int64_t c = 0; c < g.in_channels; ++c) {
    for (int64_t kh = 0; kh < g.kernel_h; ++kh) {
      for (int64_t kw = 0; kw < g.kernel_w; ++kw) {
        const int64_t row = (c * g.kernel_h + kh) * g.kernel_w + kw;
        float* drow = dst + row * cols_n;
        int64_t col = 0;
        for (int64_t n = 0; n < g.batch; ++n) {
          const float* plane = src + n * chw + c * hw;
          for (int64_t oy = 0; oy < oh; ++oy) {
            const int64_t iy = oy * g.stride + kh - g.padding;
            for (int64_t ox = 0; ox < ow; ++ox, ++col) {
              const int64_t ix = ox * g.stride + kw - g.padding;
              drow[col] = (iy >= 0 && iy < g.in_h && ix >= 0 && ix < g.in_w)
                              ? plane[iy * g.in_w + ix]
                              : 0.0F;
            }
          }
        }
      }
    }
  }
  return cols;
}

Tensor col2im(const Tensor& cols, const ConvGeometry& g) {
  g.validate();
  if (cols.rank() != 2 || cols.dim(0) != g.patch_rows() || cols.dim(1) != g.patch_cols()) {
    throw std::invalid_argument("col2im: cols shape " + cols.shape().str() +
                                " does not match geometry");
  }
  const int64_t oh = g.out_h(), ow = g.out_w();
  Tensor out(Shape{g.batch, g.in_channels, g.in_h, g.in_w});
  const float* src = cols.data();
  float* dst = out.data();
  const int64_t cols_n = g.patch_cols();
  const int64_t hw = g.in_h * g.in_w;
  const int64_t chw = g.in_channels * hw;

  for (int64_t c = 0; c < g.in_channels; ++c) {
    for (int64_t kh = 0; kh < g.kernel_h; ++kh) {
      for (int64_t kw = 0; kw < g.kernel_w; ++kw) {
        const int64_t row = (c * g.kernel_h + kh) * g.kernel_w + kw;
        const float* srow = src + row * cols_n;
        int64_t col = 0;
        for (int64_t n = 0; n < g.batch; ++n) {
          float* plane = dst + n * chw + c * hw;
          for (int64_t oy = 0; oy < oh; ++oy) {
            const int64_t iy = oy * g.stride + kh - g.padding;
            for (int64_t ox = 0; ox < ow; ++ox, ++col) {
              const int64_t ix = ox * g.stride + kw - g.padding;
              if (iy >= 0 && iy < g.in_h && ix >= 0 && ix < g.in_w) {
                plane[iy * g.in_w + ix] += srow[col];
              }
            }
          }
        }
      }
    }
  }
  return out;
}

}  // namespace ndsnn::tensor
