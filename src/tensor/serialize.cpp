#include "tensor/serialize.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace ndsnn::tensor {

namespace {
constexpr char kMagic[4] = {'N', 'D', 'T', 'S'};
constexpr uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("load_tensor: truncated stream");
  return value;
}
}  // namespace

void save_tensor(std::ostream& out, const Tensor& t) {
  out.write(kMagic, sizeof(kMagic));
  write_pod(out, kVersion);
  write_pod(out, static_cast<uint32_t>(t.rank()));
  for (int64_t i = 0; i < t.rank(); ++i) write_pod(out, t.dim(i));
  out.write(reinterpret_cast<const char*>(t.data()),
            static_cast<std::streamsize>(sizeof(float) * static_cast<std::size_t>(t.numel())));
  if (!out) throw std::runtime_error("save_tensor: stream write failed");
}

Tensor load_tensor(std::istream& in) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("load_tensor: bad magic");
  }
  const auto version = read_pod<uint32_t>(in);
  if (version != kVersion) {
    throw std::runtime_error("load_tensor: unsupported version " + std::to_string(version));
  }
  const auto rank = read_pod<uint32_t>(in);
  if (rank > 8) throw std::runtime_error("load_tensor: rank too large");
  std::vector<int64_t> dims(rank);
  // Validate dims before Shape::numel() multiplies them: a corrupt or
  // truncated header read as garbage dims must fail here with a clear
  // error, not attempt a multi-terabyte allocation (or overflow numel).
  constexpr int64_t kMaxElems = int64_t{1} << 32;
  int64_t elems = 1;
  for (auto& d : dims) {
    d = read_pod<int64_t>(in);
    if (d < 0 || d > kMaxElems) {
      throw std::runtime_error("load_tensor: corrupt dimension " + std::to_string(d));
    }
    elems *= d == 0 ? 1 : d;
    if (elems > kMaxElems) {
      throw std::runtime_error("load_tensor: element count implausibly large");
    }
  }
  Shape shape(dims);
  std::vector<float> data(static_cast<std::size_t>(shape.numel()));
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(sizeof(float) * data.size()));
  if (!in) throw std::runtime_error("load_tensor: truncated data");
  return Tensor(std::move(shape), std::move(data));
}

void save_tensor_file(const std::string& path, const Tensor& t) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_tensor_file: cannot open " + path);
  save_tensor(out, t);
}

Tensor load_tensor_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_tensor_file: cannot open " + path);
  return load_tensor(in);
}

}  // namespace ndsnn::tensor
