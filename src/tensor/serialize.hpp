// Flat binary tensor (de)serialization.
//
// Format: magic "NDTS", u32 version, u32 rank, i64 dims..., f32 data...
// Used by examples to export trained sparse models for deployment.
#pragma once

#include <iosfwd>
#include <string>

#include "tensor/tensor.hpp"

namespace ndsnn::tensor {

/// Write a tensor to a binary stream. Throws std::runtime_error on I/O error.
void save_tensor(std::ostream& out, const Tensor& t);

/// Read a tensor previously written by save_tensor.
/// Throws std::runtime_error on malformed input.
[[nodiscard]] Tensor load_tensor(std::istream& in);

/// File-path convenience wrappers.
void save_tensor_file(const std::string& path, const Tensor& t);
[[nodiscard]] Tensor load_tensor_file(const std::string& path);

}  // namespace ndsnn::tensor
