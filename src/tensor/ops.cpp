#include "tensor/ops.hpp"

#include <cmath>
#include <stdexcept>

namespace ndsnn::tensor {

void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  if (a.shape() != b.shape()) {
    throw std::invalid_argument(std::string(op) + ": shape mismatch " + a.shape().str() +
                                " vs " + b.shape().str());
  }
}

Tensor add(const Tensor& a, const Tensor& b) {
  Tensor c = a;
  add_(c, b);
  return c;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  Tensor c = a;
  sub_(c, b);
  return c;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  Tensor c = a;
  mul_(c, b);
  return c;
}

Tensor scale(const Tensor& a, float s) {
  Tensor c = a;
  scale_(c, s);
  return c;
}

void add_(Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "add_");
  float* pa = a.data();
  const float* pb = b.data();
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) pa[i] += pb[i];
}

void sub_(Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "sub_");
  float* pa = a.data();
  const float* pb = b.data();
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) pa[i] -= pb[i];
}

void mul_(Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "mul_");
  float* pa = a.data();
  const float* pb = b.data();
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) pa[i] *= pb[i];
}

void scale_(Tensor& a, float s) {
  float* pa = a.data();
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) pa[i] *= s;
}

void axpy_(Tensor& a, float s, const Tensor& b) {
  check_same_shape(a, b, "axpy_");
  float* pa = a.data();
  const float* pb = b.data();
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) pa[i] += s * pb[i];
}

Tensor map(const Tensor& a, const std::function<float(float)>& fn) {
  Tensor c = a;
  map_(c, fn);
  return c;
}

void map_(Tensor& a, const std::function<float(float)>& fn) {
  float* pa = a.data();
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) pa[i] = fn(pa[i]);
}

void add_row_bias_(Tensor& out, const Tensor& bias) {
  if (out.rank() != 2 || bias.rank() != 1 || out.dim(1) != bias.dim(0)) {
    throw std::invalid_argument("add_row_bias_: expected [M, C] + [C], got " +
                                out.shape().str() + " + " + bias.shape().str());
  }
  const int64_t m = out.dim(0), c = out.dim(1);
  const float* b = bias.data();
  float* row = out.data();
  for (int64_t r = 0; r < m; ++r, row += c) {
    for (int64_t j = 0; j < c; ++j) row[j] += b[j];
  }
}

void add_channel_bias_(Tensor& out, const Tensor& bias) {
  if (out.rank() != 4 || bias.rank() != 1 || out.dim(1) != bias.dim(0)) {
    throw std::invalid_argument("add_channel_bias_: expected [M, C, H, W] + [C], got " +
                                out.shape().str() + " + " + bias.shape().str());
  }
  const int64_t m = out.dim(0), c = out.dim(1), plane = out.dim(2) * out.dim(3);
  const float* b = bias.data();
  float* p = out.data();
  for (int64_t mm = 0; mm < m; ++mm) {
    for (int64_t ch = 0; ch < c; ++ch, p += plane) {
      const float v = b[ch];
      if (v == 0.0F) continue;
      for (int64_t i = 0; i < plane; ++i) p[i] += v;
    }
  }
}

Tensor softmax_rows(const Tensor& logits) {
  if (logits.rank() != 2) {
    throw std::invalid_argument("softmax_rows: expected rank-2, got " + logits.shape().str());
  }
  const int64_t rows = logits.dim(0), cols = logits.dim(1);
  Tensor out(logits.shape());
  for (int64_t r = 0; r < rows; ++r) {
    float maxv = logits.at(r, 0);
    for (int64_t c = 1; c < cols; ++c) maxv = std::max(maxv, logits.at(r, c));
    double denom = 0.0;
    for (int64_t c = 0; c < cols; ++c) {
      const float e = std::exp(logits.at(r, c) - maxv);
      out.at(r, c) = e;
      denom += e;
    }
    const auto inv = static_cast<float>(1.0 / denom);
    for (int64_t c = 0; c < cols; ++c) out.at(r, c) *= inv;
  }
  return out;
}

std::vector<int64_t> argmax_rows(const Tensor& m) {
  if (m.rank() != 2) {
    throw std::invalid_argument("argmax_rows: expected rank-2, got " + m.shape().str());
  }
  const int64_t rows = m.dim(0), cols = m.dim(1);
  std::vector<int64_t> idx(static_cast<std::size_t>(rows));
  for (int64_t r = 0; r < rows; ++r) {
    int64_t best = 0;
    float bestv = m.at(r, 0);
    for (int64_t c = 1; c < cols; ++c) {
      if (m.at(r, c) > bestv) {
        bestv = m.at(r, c);
        best = c;
      }
    }
    idx[static_cast<std::size_t>(r)] = best;
  }
  return idx;
}

double mean(const Tensor& a) { return a.sum() / static_cast<double>(a.numel()); }

double l2_norm(const Tensor& a) {
  double acc = 0.0;
  const float* p = a.data();
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) acc += static_cast<double>(p[i]) * p[i];
  return std::sqrt(acc);
}

}  // namespace ndsnn::tensor
