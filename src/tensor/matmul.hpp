// Dense GEMM kernels.
//
// matmul:      C[M,N]  = A[M,K]  * B[K,N]
// matmul_tn:   C[M,N]  = Aᵀ (A is [K,M]) * B[K,N]
// matmul_nt:   C[M,N]  = A[M,K] * Bᵀ (B is [N,K])
//
// Blocked i-k-j loops; good enough for the CPU-scale experiments here.
//
// matmul and matmul_nt (the two kernels the inference runtime's dense
// fallback ops run) optionally take a util::ThreadPool and partition by
// output row of C. Each C row is produced by exactly one chunk with the
// unchanged serial accumulation order, so the pooled results are
// bitwise identical to the serial ones for any lane count; small
// products (work below util::kMinParallelWork) stay serial.
// matmul and matmul_nt additionally take a kernel tier (resolved via
// util::simd::resolve): the kAvx2 bodies keep the exact per-output
// rounding sequence of the scalar loops (explicit mul+add float chains
// for matmul, exact double chains for matmul_nt), so results are
// bitwise identical across tiers. matmul_tn (training-only, off the
// inference hot path) stays scalar.
#pragma once

#include "tensor/tensor.hpp"
#include "util/cpuinfo.hpp"
#include "util/thread_pool.hpp"

namespace ndsnn::tensor {

[[nodiscard]] Tensor matmul(const Tensor& a, const Tensor& b,
                            util::ThreadPool* pool = nullptr,
                            util::simd::Tier tier = util::simd::Tier::kAuto);
[[nodiscard]] Tensor matmul_tn(const Tensor& a, const Tensor& b);
[[nodiscard]] Tensor matmul_nt(const Tensor& a, const Tensor& b,
                               util::ThreadPool* pool = nullptr,
                               util::simd::Tier tier = util::simd::Tier::kAuto);

/// C += A * B (accumulating variant used by BPTT weight-gradient sums).
void matmul_acc(const Tensor& a, const Tensor& b, Tensor& c, util::ThreadPool* pool = nullptr,
                util::simd::Tier tier = util::simd::Tier::kAuto);
/// C += Aᵀ * B
void matmul_tn_acc(const Tensor& a, const Tensor& b, Tensor& c);
/// C += A * Bᵀ
void matmul_nt_acc(const Tensor& a, const Tensor& b, Tensor& c, util::ThreadPool* pool = nullptr,
                   util::simd::Tier tier = util::simd::Tier::kAuto);

}  // namespace ndsnn::tensor
