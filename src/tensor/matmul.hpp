// Dense GEMM kernels.
//
// matmul:      C[M,N]  = A[M,K]  * B[K,N]
// matmul_tn:   C[M,N]  = Aᵀ (A is [K,M]) * B[K,N]
// matmul_nt:   C[M,N]  = A[M,K] * Bᵀ (B is [N,K])
//
// Blocked i-k-j loops; good enough for the CPU-scale experiments here.
#pragma once

#include "tensor/tensor.hpp"

namespace ndsnn::tensor {

[[nodiscard]] Tensor matmul(const Tensor& a, const Tensor& b);
[[nodiscard]] Tensor matmul_tn(const Tensor& a, const Tensor& b);
[[nodiscard]] Tensor matmul_nt(const Tensor& a, const Tensor& b);

/// C += A * B (accumulating variant used by BPTT weight-gradient sums).
void matmul_acc(const Tensor& a, const Tensor& b, Tensor& c);
/// C += Aᵀ * B
void matmul_tn_acc(const Tensor& a, const Tensor& b, Tensor& c);
/// C += A * Bᵀ
void matmul_nt_acc(const Tensor& a, const Tensor& b, Tensor& c);

}  // namespace ndsnn::tensor
