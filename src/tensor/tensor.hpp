// Tensor: dense, contiguous, row-major FP32 storage.
//
// This is the numeric substrate of the whole repository: SNN layers,
// sparse masks and optimizers all operate on `Tensor`. Value semantics:
// copies are deep, moves are cheap. All stochastic fills take an explicit
// RNG so every experiment is reproducible.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/shape.hpp"

namespace ndsnn::tensor {

class Rng;  // random.hpp

class Tensor {
 public:
  /// Scalar zero.
  Tensor() : shape_(), data_(1, 0.0F) {}

  /// Zero-filled tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Tensor filled with `value`.
  Tensor(Shape shape, float value);

  /// Tensor initialized from `values` (size must equal shape.numel()).
  Tensor(Shape shape, std::vector<float> values);

  [[nodiscard]] const Shape& shape() const { return shape_; }
  [[nodiscard]] int64_t numel() const { return static_cast<int64_t>(data_.size()); }
  [[nodiscard]] int64_t rank() const { return shape_.rank(); }
  [[nodiscard]] int64_t dim(int64_t i) const { return shape_.dim(i); }

  [[nodiscard]] float* data() { return data_.data(); }
  [[nodiscard]] const float* data() const { return data_.data(); }
  [[nodiscard]] std::span<float> span() { return {data_.data(), data_.size()}; }
  [[nodiscard]] std::span<const float> span() const { return {data_.data(), data_.size()}; }

  /// Flat element access with bounds checking in debug builds.
  [[nodiscard]] float& at(int64_t i) { return data_[static_cast<std::size_t>(i)]; }
  [[nodiscard]] float at(int64_t i) const { return data_[static_cast<std::size_t>(i)]; }

  /// 2-D access for matrices shaped [rows, cols].
  [[nodiscard]] float& at(int64_t r, int64_t c);
  [[nodiscard]] float at(int64_t r, int64_t c) const;

  /// 4-D access for activations/weights shaped [n, c, h, w].
  [[nodiscard]] float& at4(int64_t n, int64_t c, int64_t h, int64_t w);
  [[nodiscard]] float at4(int64_t n, int64_t c, int64_t h, int64_t w) const;

  /// Reinterpret as a new shape with the same numel (no copy).
  [[nodiscard]] Tensor reshaped(Shape new_shape) const;

  /// In-place fills.
  void fill(float value);
  void zero() { fill(0.0F); }

  /// Uniform in [lo, hi).
  void fill_uniform(Rng& rng, float lo, float hi);
  /// Gaussian N(mean, stddev).
  void fill_normal(Rng& rng, float mean, float stddev);
  /// Kaiming-He normal for a layer with the given fan-in.
  void fill_kaiming(Rng& rng, int64_t fan_in);

  /// Sum of all elements (double accumulator for stability).
  [[nodiscard]] double sum() const;
  /// Count of exactly-zero entries.
  [[nodiscard]] int64_t count_zeros() const;
  /// max |x|.
  [[nodiscard]] float abs_max() const;

 private:
  Shape shape_;
  std::vector<float> data_;
};

}  // namespace ndsnn::tensor
