#include "core/admm_method.hpp"

#include <cmath>
#include <stdexcept>

#include "sparse/topk.hpp"

namespace ndsnn::core {

void AdmmConfig::validate() const {
  if (target_sparsity <= 0.0 || target_sparsity >= 1.0) {
    throw std::invalid_argument("AdmmConfig: target_sparsity must be in (0, 1)");
  }
  if (rho <= 0.0) throw std::invalid_argument("AdmmConfig: rho must be > 0");
  if (projection_period < 1) {
    throw std::invalid_argument("AdmmConfig: projection_period must be >= 1");
  }
  if (admm_epochs < 1) throw std::invalid_argument("AdmmConfig: admm_epochs must be >= 1");
}

AdmmMethod::AdmmMethod(AdmmConfig config) : config_(config) { config_.validate(); }

void AdmmMethod::initialize(const std::vector<nn::ParamRef>& params, tensor::Rng& rng) {
  // Start dense; masks only bind at hard-prune time.
  build_masks(params, /*initial_sparsity=*/0.0, /*use_erk=*/true, rng);

  const auto dims = layer_dims();
  layer_targets_ = config_.use_erk
                       ? sparse::erk_distribution(dims, config_.target_sparsity)
                       : sparse::uniform_distribution(dims, config_.target_sparsity);

  z_.clear();
  u_.clear();
  for (const auto& l : layers()) {
    z_.push_back(*l.ref.value);
    u_.emplace_back(l.ref.value->shape());
  }
  update_duals();
}

void AdmmMethod::update_duals() {
  for (std::size_t li = 0; li < layers().size(); ++li) {
    const auto& w = *layers()[li].ref.value;
    auto& z = z_[li];
    auto& u = u_[li];
    // Z = Proj_{sparsity}(W + U): keep the top-(1-theta) magnitudes.
    tensor::Tensor wu = w;
    {
      float* p = wu.data();
      const float* pu = u.data();
      for (int64_t i = 0; i < wu.numel(); ++i) p[i] += pu[i];
    }
    const auto keep = static_cast<int64_t>(
        (1.0 - layer_targets_[li]) * static_cast<double>(wu.numel()) + 0.5);
    const float threshold = sparse::magnitude_threshold(wu, keep);
    z = wu;
    {
      float* pz = z.data();
      for (int64_t i = 0; i < z.numel(); ++i) {
        if (std::fabs(pz[i]) < threshold) pz[i] = 0.0F;
      }
    }
    // U += W - Z.
    {
      float* pu = u.data();
      const float* pw = w.data();
      const float* pz = z.data();
      for (int64_t i = 0; i < u.numel(); ++i) pu[i] += pw[i] - pz[i];
    }
  }
}

void AdmmMethod::before_step(int64_t /*iteration*/) {
  if (!initialized()) throw std::logic_error("AdmmMethod: not initialized");
  if (hard_pruned_) {
    mask_gradients();
    return;
  }
  // Penalty gradient: rho * (W - Z + U).
  const auto rho = static_cast<float>(config_.rho);
  for (std::size_t li = 0; li < layers().size(); ++li) {
    auto& l = layers()[li];
    float* g = l.ref.grad->data();
    const float* w = l.ref.value->data();
    const float* z = z_[li].data();
    const float* u = u_[li].data();
    for (int64_t i = 0; i < l.ref.grad->numel(); ++i) {
      g[i] += rho * (w[i] - z[i] + u[i]);
    }
  }
}

void AdmmMethod::after_step(int64_t iteration) {
  if (hard_pruned_) {
    mask_weights();
    return;
  }
  if (iteration > 0 && iteration % config_.projection_period == 0) update_duals();
}

void AdmmMethod::on_epoch_begin(int64_t epoch) {
  if (!hard_pruned_ && epoch >= config_.admm_epochs) hard_prune();
}

void AdmmMethod::hard_prune() {
  for (std::size_t li = 0; li < layers().size(); ++li) {
    auto& l = layers()[li];
    const auto keep = static_cast<int64_t>(
        (1.0 - layer_targets_[li]) * static_cast<double>(l.mask.numel()) + 0.5);
    const float threshold = sparse::magnitude_threshold(*l.ref.value, keep);
    for (int64_t i = 0; i < l.mask.numel(); ++i) {
      l.mask.set(i, std::fabs(l.ref.value->at(i)) >= threshold);
    }
    l.mask.apply(*l.ref.value);
  }
  hard_pruned_ = true;
}

}  // namespace ndsnn::core
