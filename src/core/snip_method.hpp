// SNIP (Lee et al. 2019): single-shot pruning at initialization by
// connection saliency |g * w| computed on one (or a few) minibatches.
// A static-sparsity baseline: after the one-shot prune, the mask never
// changes. Contrasts with NDSNN's dynamic topology.
//
// Because the saliency needs gradients, the trainer runs normally and
// SnipMethod builds its mask at the FIRST before_step call (when the
// first batch's dense gradients are available).
#pragma once

#include "core/method.hpp"

namespace ndsnn::core {

struct SnipConfig {
  double sparsity = 0.9;
  bool per_layer = false;  ///< false = global saliency ranking (paper default)

  void validate() const;
};

class SnipMethod final : public MaskedMethodBase {
 public:
  explicit SnipMethod(SnipConfig config);

  void initialize(const std::vector<nn::ParamRef>& params, tensor::Rng& rng) override;
  void before_step(int64_t iteration) override;
  void after_step(int64_t iteration) override;
  [[nodiscard]] std::string name() const override { return "SNIP"; }

  [[nodiscard]] bool mask_frozen() const { return pruned_; }

 private:
  void prune_by_saliency();

  SnipConfig config_;
  bool pruned_ = false;
};

}  // namespace ndsnn::core
