// NDSNN: the paper's contribution (Sec. III-C, Algorithm 1).
//
// Train from scratch at ERK-distributed initial sparsity theta_i; every
// delta_t iterations drop the smallest-magnitude active weights at the
// cosine-annealed death rate (Eq. 5) and grow the largest-gradient
// inactive weights, but only up to the Eq. 4 cubic sparsity target -- so
// the number of non-zeros monotonically DECREASES from (1-theta_i)N to
// (1-theta_f)N, unlike SET/RigL which hold it constant.
#pragma once

#include "core/method.hpp"
#include "sparse/schedule.hpp"

namespace ndsnn::core {

struct NdsnnConfig {
  double initial_sparsity = 0.5;   ///< theta_i (paper explores {0.5..0.9})
  double final_sparsity = 0.9;     ///< theta_f
  int64_t delta_t = 100;           ///< mask-update period in iterations
  int64_t t_end = 10000;           ///< last iteration that may update masks
  /// d_0 in Eq. 5. Tuned per method as the original papers do: SET/RigL
  /// use their canonical 0.3; NDSNN favors gentler churn because its
  /// sparsity ramp already retires connections every round.
  double initial_death_rate = 0.1;
  double min_death_rate = 0.05;    ///< d_min in Eq. 5
  bool use_erk = true;             ///< layer-wise distribution
  double ramp_exponent = 3.0;      ///< Eq. 4 exponent (3 = paper; ablation)
  /// Grow by gradient magnitude (Algorithm 1). False = random growth, an
  /// ablation that isolates the schedule from the growth criterion.
  bool gradient_growth = true;

  void validate() const;
  /// Number of drop-and-grow rounds n = floor(t_end / delta_t).
  [[nodiscard]] int64_t rounds() const { return t_end / delta_t; }
};

class NdsnnMethod final : public MaskedMethodBase {
 public:
  explicit NdsnnMethod(NdsnnConfig config);

  void initialize(const std::vector<nn::ParamRef>& params, tensor::Rng& rng) override;
  void before_step(int64_t iteration) override;
  void after_step(int64_t iteration) override;
  [[nodiscard]] std::string name() const override { return "NDSNN"; }

  [[nodiscard]] const NdsnnConfig& config() const { return config_; }
  /// Eq. 4 target sparsity of layer l at iteration t (for tests/plots).
  [[nodiscard]] double target_sparsity(std::size_t layer, int64_t iteration) const;
  /// Eq. 5 death rate at iteration t.
  [[nodiscard]] double death_rate(int64_t iteration) const;
  /// True when `iteration` is a drop-and-grow round boundary.
  [[nodiscard]] bool is_update_step(int64_t iteration) const;

 private:
  NdsnnConfig config_;
  std::vector<sparse::SparsityRamp> ramps_;     // one per layer
  std::unique_ptr<sparse::DeathRateSchedule> death_;
  GradSnapshot snapshot_;
  tensor::Rng grow_rng_{0};
};

}  // namespace ndsnn::core
