// Post-training N:M deployment pass (Sec. III-D).
//
// NDSNN trains unstructured masks; structured-sparsity hardware wants
// N:M patterns. This pass projects every prunable weight tensor of a
// trained network onto the pattern in place (keeping the N largest
// magnitudes per group of M) and reports the magnitude mass each layer
// loses — the accuracy-relevant damage of the projection. Projection
// pushes lowered weight matrices toward block occupancy ~n/m (for
// weights that were dense before projecting), so patterns at or above
// ~2:4 clear the CompileOptions::bcsr_min_occupancy bar and compile
// onto the runtime's block-CSR kernels automatically; sparser patterns
// (1:4) and already-highly-sparse networks measure lower occupancy and
// correctly stay on element-wise CSR.
#pragma once

#include <string>
#include <vector>

#include "nn/network.hpp"
#include "sparse/structured.hpp"

namespace ndsnn::core {

/// Per-parameter outcome of the projection.
struct NmLayerReport {
  std::string param;       ///< ParamRef name, e.g. "conv1.weight"
  int64_t weights = 0;     ///< total elements
  double loss = 0.0;       ///< fraction of |w| mass the projection removed
  double sparsity = 0.0;   ///< zero fraction after projecting
};

/// Project every prunable parameter of `net` onto `pattern` in place and
/// return one report entry per parameter, in network order. Weights that
/// already satisfy the pattern are untouched (loss 0).
std::vector<NmLayerReport> project_network_nm(nn::SpikingNetwork& net,
                                              const sparse::NmPattern& pattern);

/// Parameter-weighted mean projection loss over a report.
[[nodiscard]] double mean_projection_loss(const std::vector<NmLayerReport>& report);

}  // namespace ndsnn::core
