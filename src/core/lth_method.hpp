// LTH-SNN baseline: iterative magnitude pruning with weight rewinding
// (Frankle & Carbin 2018; Kim et al. ECCV'22 for SNNs -- the paper's
// strongest dense-start baseline in Table I and Figs. 4-5).
//
// Training is divided into R rounds of equal epochs. Each round trains
// the current ticket; at the round boundary the surviving weights are
// pruned globally by magnitude so that sparsity follows
//   theta_r = theta_target^(r / R)-style geometric ladder
// (prune a constant fraction of the remainder each round), and the
// survivors are REWOUND to their initial values.
#pragma once

#include "core/method.hpp"

namespace ndsnn::core {

struct LthConfig {
  double final_sparsity = 0.9;
  int64_t rounds = 3;             ///< pruning rounds (paper uses many more)
  int64_t epochs_per_round = 5;
  bool rewind = true;             ///< rewind survivors to init (true LTH)

  void validate() const;
  /// Sparsity after round r in [1, rounds]: geometric ladder reaching
  /// final_sparsity at r == rounds.
  [[nodiscard]] double sparsity_after_round(int64_t r) const;
};

class LthMethod final : public MaskedMethodBase {
 public:
  explicit LthMethod(LthConfig config);

  void initialize(const std::vector<nn::ParamRef>& params, tensor::Rng& rng) override;
  void after_step(int64_t iteration) override;
  void on_epoch_begin(int64_t epoch) override;
  [[nodiscard]] std::string name() const override { return "LTH-SNN"; }

  [[nodiscard]] const LthConfig& config() const { return config_; }
  [[nodiscard]] int64_t current_round() const { return round_; }

 private:
  /// Global magnitude pruning across all layers to `target` sparsity.
  void prune_to(double target);
  void rewind_weights();

  LthConfig config_;
  int64_t round_ = 0;
  std::vector<tensor::Tensor> initial_weights_;
};

}  // namespace ndsnn::core
