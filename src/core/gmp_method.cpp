#include "core/gmp_method.hpp"

#include <stdexcept>

#include "sparse/topk.hpp"

namespace ndsnn::core {

void GmpConfig::validate() const {
  if (final_sparsity <= 0.0 || final_sparsity >= 1.0) {
    throw std::invalid_argument("GmpConfig: final_sparsity must be in (0, 1)");
  }
  if (delta_t < 1 || t_end < delta_t) {
    throw std::invalid_argument("GmpConfig: need delta_t >= 1, t_end >= delta_t");
  }
}

GmpMethod::GmpMethod(GmpConfig config) : config_(config) { config_.validate(); }

void GmpMethod::initialize(const std::vector<nn::ParamRef>& params, tensor::Rng& rng) {
  build_masks(params, /*initial_sparsity=*/0.0, /*use_erk=*/true, rng);
  const auto dims = layer_dims();
  const std::vector<double> theta_f =
      config_.use_erk ? sparse::erk_distribution(dims, config_.final_sparsity)
                      : sparse::uniform_distribution(dims, config_.final_sparsity);
  ramps_.clear();
  ramps_.reserve(dims.size());
  for (const double tf : theta_f) {
    ramps_.emplace_back(0.0, tf, 0, config_.delta_t, config_.rounds());
  }
}

bool GmpMethod::is_update_step(int64_t iteration) const {
  return iteration > 0 && iteration % config_.delta_t == 0 && iteration <= config_.t_end;
}

void GmpMethod::after_step(int64_t iteration) {
  if (!initialized()) throw std::logic_error("GmpMethod: not initialized");
  if (is_update_step(iteration)) {
    for (std::size_t li = 0; li < layers().size(); ++li) {
      auto& layer = layers()[li];
      const int64_t n = layer.mask.numel();
      const auto target_active = static_cast<int64_t>(
          (1.0 - ramps_[li].at(iteration)) * static_cast<double>(n) + 0.5);
      const int64_t active_now = layer.mask.active_count();
      const int64_t to_prune = active_now - target_active;
      if (to_prune <= 0) continue;
      const auto active = layer.mask.active_indices();
      const auto victims =
          sparse::argdrop_smallest_magnitude(*layer.ref.value, active, to_prune);
      layer.mask.deactivate(victims);
    }
  }
  mask_weights();
}

}  // namespace ndsnn::core
