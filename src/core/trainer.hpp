// Trainer: the full training loop binding model, data, optimizer and a
// SparseTrainingMethod, with the per-epoch bookkeeping the paper's
// evaluation needs (spike rates, sparsity trace, accuracy trace).
#pragma once

#include <memory>
#include <vector>

#include "core/method.hpp"
#include "data/augment.hpp"
#include "data/dataloader.hpp"
#include "nn/network.hpp"
#include "opt/lr_scheduler.hpp"
#include "opt/sgd.hpp"

namespace ndsnn::core {

struct TrainerConfig {
  int64_t epochs = 10;
  int64_t batch_size = 32;
  double learning_rate = 0.3;    ///< paper: 3e-1 SGD
  double momentum = 0.9;
  double weight_decay = 5e-4;
  bool cosine_lr = true;
  bool augment = true;
  uint64_t seed = 1234;
  bool verbose = false;          ///< per-epoch INFO logs

  void validate() const;
};

/// Per-epoch record.
struct EpochStats {
  double train_loss = 0.0;
  double train_acc = 0.0;   ///< percent
  double test_acc = 0.0;    ///< percent
  double sparsity = 0.0;    ///< overall prunable-weight sparsity
  double spike_rate = 0.0;  ///< average firing fraction this epoch
  double lr = 0.0;
};

struct TrainResult {
  std::vector<EpochStats> epochs;
  double final_test_acc = 0.0;
  double best_test_acc = 0.0;
  /// Max test accuracy over epochs whose sparsity already reached the
  /// final level. THIS is what the paper's tables report: round-based
  /// methods (LTH, ADMM) pass through low-sparsity phases whose (higher)
  /// accuracy must not be credited to the sparse model.
  double best_acc_at_final_sparsity = 0.0;
  double final_sparsity = 0.0;
  /// Mean over epochs of spike_rate * (1 - sparsity): the numerator of
  /// the paper's training-cost metric (Fig. 5), before normalizing by the
  /// dense run.
  double cost_index = 0.0;
  double wall_seconds = 0.0;
};

class Trainer {
 public:
  /// All references must outlive the Trainer. The method must NOT be
  /// initialized yet; Trainer calls initialize().
  Trainer(nn::SpikingNetwork& network, SparseTrainingMethod& method,
          const data::Dataset& train_set, const data::Dataset& test_set,
          TrainerConfig config);

  /// Run the full schedule and return the trace.
  [[nodiscard]] TrainResult run();

  /// Evaluate current weights on the test set (percent accuracy).
  [[nodiscard]] double evaluate();

  [[nodiscard]] int64_t iterations_per_epoch() const;
  [[nodiscard]] int64_t total_iterations() const {
    return iterations_per_epoch() * config_.epochs;
  }

 private:
  nn::SpikingNetwork& network_;
  SparseTrainingMethod& method_;
  const data::Dataset& train_set_;
  const data::Dataset& test_set_;
  TrainerConfig config_;
};

}  // namespace ndsnn::core
