#include "core/cost_model.hpp"

#include <stdexcept>

namespace ndsnn::core {

std::vector<double> relative_cost_per_epoch(const TrainResult& sparse_run,
                                            const TrainResult& dense_run) {
  if (sparse_run.epochs.size() != dense_run.epochs.size()) {
    throw std::invalid_argument("relative_cost_per_epoch: epoch count mismatch");
  }
  std::vector<double> cost;
  cost.reserve(sparse_run.epochs.size());
  for (std::size_t i = 0; i < sparse_run.epochs.size(); ++i) {
    const auto& s = sparse_run.epochs[i];
    const auto& d = dense_run.epochs[i];
    const double rd = d.spike_rate > 1e-12 ? d.spike_rate : 1e-12;
    cost.push_back(s.spike_rate * (1.0 - s.sparsity) / rd);
  }
  return cost;
}

double normalized_training_cost_pct(const TrainResult& sparse_run,
                                    const TrainResult& dense_run) {
  const auto cost = relative_cost_per_epoch(sparse_run, dense_run);
  if (cost.empty()) return 0.0;
  double acc = 0.0;
  for (const double c : cost) acc += c;
  return 100.0 * acc / static_cast<double>(cost.size());
}

double mean_density(const TrainResult& run) {
  if (run.epochs.empty()) return 1.0;
  double acc = 0.0;
  for (const auto& e : run.epochs) acc += 1.0 - e.sparsity;
  return acc / static_cast<double>(run.epochs.size());
}

}  // namespace ndsnn::core
