#include "core/dense_method.hpp"

namespace ndsnn::core {

void DenseMethod::initialize(const std::vector<nn::ParamRef>& params, tensor::Rng& /*rng*/) {
  prunable_count_ = 0;
  for (const auto& p : params) {
    if (p.prunable) ++prunable_count_;
  }
}

std::vector<double> DenseMethod::layer_sparsities() const {
  return std::vector<double>(prunable_count_, 0.0);
}

}  // namespace ndsnn::core
