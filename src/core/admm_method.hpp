// ADMM pruning baseline (Deng et al., TNNLS'21 -- Table II).
//
// Alternating Direction Method of Multipliers with a sparsity-projection
// constraint: auxiliary variable Z is the projection of W + U onto the
// set of tensors with the target sparsity; dual U accumulates W - Z.
// The augmented-Lagrangian term rho/2 ||W - Z + U||^2 adds rho(W - Z + U)
// to the gradient. After `admm_epochs`, weights are hard-pruned by
// magnitude and the survivors fine-tuned under a fixed mask.
#pragma once

#include "core/method.hpp"

namespace ndsnn::core {

struct AdmmConfig {
  double target_sparsity = 0.5;
  double rho = 1e-2;
  int64_t projection_period = 50;  ///< iterations between Z/U updates
  int64_t admm_epochs = 6;         ///< penalty phase length; then hard prune
  bool use_erk = false;            ///< ADMM paper uses uniform per-layer targets

  void validate() const;
};

class AdmmMethod final : public MaskedMethodBase {
 public:
  explicit AdmmMethod(AdmmConfig config);

  void initialize(const std::vector<nn::ParamRef>& params, tensor::Rng& rng) override;
  void before_step(int64_t iteration) override;
  void after_step(int64_t iteration) override;
  void on_epoch_begin(int64_t epoch) override;
  [[nodiscard]] std::string name() const override { return "ADMM"; }

  [[nodiscard]] bool hard_pruned() const { return hard_pruned_; }

 private:
  /// Z = projection of (W + U) keeping the top (1-theta) magnitudes.
  void update_duals();
  void hard_prune();

  AdmmConfig config_;
  std::vector<double> layer_targets_;
  std::vector<tensor::Tensor> z_;  // projected weights
  std::vector<tensor::Tensor> u_;  // scaled duals
  bool hard_pruned_ = false;
};

}  // namespace ndsnn::core
