// Training-cost model (Sec. IV-C, Fig. 5).
//
// "No computation is required if there are no input spikes or a
// connection is pruned", so the relative computation cost of a sparse
// model w.r.t. the dense model at epoch i is
//
//     cost_i = (R_s^i * density_i) / R_d^i
//
// with R the network-average spike rate tracked over the epoch and
// density = 1 - sparsity the fraction of surviving connections. (The
// paper writes "Sparsity_i" for the surviving fraction; we use the
// unambiguous name.) The normalized training cost of a whole run is the
// epoch-mean of cost_i, in percent.
#pragma once

#include <vector>

#include "core/trainer.hpp"

namespace ndsnn::core {

/// Per-epoch relative costs of a sparse run against a dense reference.
/// Both traces must have the same number of epochs.
[[nodiscard]] std::vector<double> relative_cost_per_epoch(const TrainResult& sparse_run,
                                                          const TrainResult& dense_run);

/// Normalized training cost in percent (epoch mean of relative cost).
[[nodiscard]] double normalized_training_cost_pct(const TrainResult& sparse_run,
                                                  const TrainResult& dense_run);

/// Estimated training FLOPs of one run, relative to its own dense
/// equivalent, from the sparsity trace alone (used by Table III notes):
/// mean_i (1 - sparsity_i).
[[nodiscard]] double mean_density(const TrainResult& run);

}  // namespace ndsnn::core
