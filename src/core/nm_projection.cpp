#include "core/nm_projection.hpp"

namespace ndsnn::core {

std::vector<NmLayerReport> project_network_nm(nn::SpikingNetwork& net,
                                              const sparse::NmPattern& pattern) {
  pattern.validate();
  std::vector<NmLayerReport> report;
  for (const auto& p : net.params()) {
    if (!p.prunable) continue;
    NmLayerReport entry;
    entry.param = p.name;
    entry.weights = p.value->numel();
    entry.loss = sparse::nm_projection_loss(*p.value, pattern);
    sparse::project_nm(*p.value, pattern);
    entry.sparsity = entry.weights == 0
                         ? 0.0
                         : static_cast<double>(p.value->count_zeros()) /
                               static_cast<double>(entry.weights);
    report.push_back(std::move(entry));
  }
  return report;
}

double mean_projection_loss(const std::vector<NmLayerReport>& report) {
  int64_t weights = 0;
  double weighted = 0.0;
  for (const auto& r : report) {
    weights += r.weights;
    weighted += r.loss * static_cast<double>(r.weights);
  }
  return weights == 0 ? 0.0 : weighted / static_cast<double>(weights);
}

}  // namespace ndsnn::core
