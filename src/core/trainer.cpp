#include "core/trainer.hpp"

#include <stdexcept>

#include "util/logging.hpp"
#include "util/stopwatch.hpp"

namespace ndsnn::core {

void TrainerConfig::validate() const {
  if (epochs < 1) throw std::invalid_argument("TrainerConfig: epochs must be >= 1");
  if (batch_size < 1) throw std::invalid_argument("TrainerConfig: batch_size must be >= 1");
  if (learning_rate <= 0.0) throw std::invalid_argument("TrainerConfig: bad learning_rate");
}

Trainer::Trainer(nn::SpikingNetwork& network, SparseTrainingMethod& method,
                 const data::Dataset& train_set, const data::Dataset& test_set,
                 TrainerConfig config)
    : network_(network),
      method_(method),
      train_set_(train_set),
      test_set_(test_set),
      config_(config) {
  config_.validate();
}

int64_t Trainer::iterations_per_epoch() const {
  return (train_set_.size() + config_.batch_size - 1) / config_.batch_size;
}

double Trainer::evaluate() {
  data::DataLoader loader(test_set_, config_.batch_size, /*seed=*/1, /*shuffle=*/false);
  loader.start_epoch();
  int64_t correct = 0, total = 0;
  while (auto batch = loader.next()) {
    const nn::StepResult r = network_.eval_step(batch->images, batch->labels);
    correct += r.correct;
    total += r.batch;
  }
  if (total == 0) return 0.0;
  return 100.0 * static_cast<double>(correct) / static_cast<double>(total);
}

TrainResult Trainer::run() {
  util::Stopwatch watch;
  tensor::Rng rng(config_.seed);
  method_.initialize(network_.params(), rng);

  opt::SgdConfig sgd_config;
  sgd_config.learning_rate = config_.learning_rate;
  sgd_config.momentum = config_.momentum;
  sgd_config.weight_decay = config_.weight_decay;
  opt::Sgd sgd(network_.params(), sgd_config);
  opt::CosineLr cosine(config_.learning_rate, config_.epochs);

  data::DataLoader loader(train_set_, config_.batch_size, config_.seed ^ 0xABCDULL);
  data::AugmentConfig aug;
  // Scale the CIFAR recipe (pad 4 at 32px) down with the resolution so
  // miniature benches are not over-augmented.
  aug.crop_padding = std::max<int64_t>(1, train_set_.image_size() / 8);
  tensor::Rng aug_rng(config_.seed ^ 0x5EEDULL);

  TrainResult result;
  int64_t iteration = 0;
  for (int64_t epoch = 0; epoch < config_.epochs; ++epoch) {
    method_.on_epoch_begin(epoch);
    const double lr = config_.cosine_lr ? cosine.lr_at(epoch) : config_.learning_rate;
    sgd.set_learning_rate(lr);

    loader.start_epoch();
    double loss_acc = 0.0, spike_acc = 0.0;
    int64_t correct = 0, seen = 0, batches = 0;
    while (auto batch = loader.next()) {
      if (config_.augment) augment_batch(batch->images, aug, aug_rng);
      sgd.zero_grad();
      const nn::StepResult r = network_.train_step(batch->images, batch->labels);
      method_.before_step(iteration);
      sgd.step();
      method_.after_step(iteration);
      ++iteration;
      loss_acc += r.loss;
      spike_acc += r.spike_rate;
      correct += r.correct;
      seen += r.batch;
      ++batches;
    }

    EpochStats stats;
    stats.train_loss = batches > 0 ? loss_acc / static_cast<double>(batches) : 0.0;
    stats.train_acc = seen > 0 ? 100.0 * static_cast<double>(correct) / static_cast<double>(seen) : 0.0;
    stats.test_acc = evaluate();
    stats.sparsity = method_.overall_sparsity();
    stats.spike_rate = batches > 0 ? spike_acc / static_cast<double>(batches) : 0.0;
    stats.lr = lr;
    result.epochs.push_back(stats);

    if (config_.verbose) {
      util::log_info() << method_.name() << " epoch " << epoch << ": loss="
                       << stats.train_loss << " train_acc=" << stats.train_acc
                       << "% test_acc=" << stats.test_acc << "% sparsity="
                       << stats.sparsity << " spike_rate=" << stats.spike_rate;
    }
  }

  result.final_test_acc = result.epochs.back().test_acc;
  result.final_sparsity = result.epochs.back().sparsity;
  for (const auto& e : result.epochs) {
    result.best_test_acc = std::max(result.best_test_acc, e.test_acc);
    if (e.sparsity >= result.final_sparsity - 1e-6) {
      result.best_acc_at_final_sparsity =
          std::max(result.best_acc_at_final_sparsity, e.test_acc);
    }
    result.cost_index += e.spike_rate * (1.0 - e.sparsity);
  }
  result.cost_index /= static_cast<double>(result.epochs.size());
  result.wall_seconds = watch.seconds();
  return result;
}

}  // namespace ndsnn::core
