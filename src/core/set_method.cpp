#include "core/set_method.hpp"

#include <stdexcept>

#include "sparse/topk.hpp"

namespace ndsnn::core {

void SetConfig::validate() const {
  if (sparsity < 0.0 || sparsity >= 1.0) {
    throw std::invalid_argument("SetConfig: sparsity must be in [0, 1)");
  }
  if (delta_t < 1 || t_end < delta_t) {
    throw std::invalid_argument("SetConfig: need delta_t >= 1, t_end >= delta_t");
  }
  if (initial_death_rate < 0.0 || initial_death_rate > 1.0 || min_death_rate < 0.0 ||
      min_death_rate > initial_death_rate) {
    throw std::invalid_argument("SetConfig: bad death rates");
  }
}

SetMethod::SetMethod(SetConfig config) : config_(config) { config_.validate(); }

void SetMethod::initialize(const std::vector<nn::ParamRef>& params, tensor::Rng& rng) {
  build_masks(params, config_.sparsity, config_.use_erk, rng);
  grow_rng_ = rng.fork();
  death_ = std::make_unique<sparse::DeathRateSchedule>(
      config_.initial_death_rate, config_.min_death_rate, 0, config_.delta_t,
      config_.rounds());
}

bool SetMethod::is_update_step(int64_t iteration) const {
  return iteration > 0 && iteration % config_.delta_t == 0 && iteration < config_.t_end;
}

void SetMethod::after_step(int64_t iteration) {
  if (!initialized()) throw std::logic_error("SetMethod: not initialized");
  if (is_update_step(iteration)) {
    const double dt = death_->at(iteration);
    for (auto& layer : layers()) {
      const int64_t active_now = layer.mask.active_count();
      const auto drop = static_cast<int64_t>(dt * static_cast<double>(active_now));
      if (drop <= 0) continue;
      const auto active = layer.mask.active_indices();
      const auto to_drop = sparse::argdrop_smallest_magnitude(*layer.ref.value, active, drop);
      layer.mask.deactivate(to_drop);

      // Grow the same count back at random (sparsity is conserved).
      auto pool = layer.mask.inactive_indices();
      grow_rng_.shuffle(pool);
      const std::vector<int64_t> to_grow(pool.begin(), pool.begin() + drop);
      layer.mask.activate(to_grow);
      for (const int64_t idx : to_grow) layer.ref.value->at(idx) = 0.0F;
    }
  }
  mask_weights();
}

}  // namespace ndsnn::core
