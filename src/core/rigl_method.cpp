#include "core/rigl_method.hpp"

#include <stdexcept>

#include "sparse/topk.hpp"

namespace ndsnn::core {

void RiglConfig::validate() const {
  if (sparsity < 0.0 || sparsity >= 1.0) {
    throw std::invalid_argument("RiglConfig: sparsity must be in [0, 1)");
  }
  if (delta_t < 1 || t_end < delta_t) {
    throw std::invalid_argument("RiglConfig: need delta_t >= 1, t_end >= delta_t");
  }
  if (initial_death_rate < 0.0 || initial_death_rate > 1.0 || min_death_rate < 0.0 ||
      min_death_rate > initial_death_rate) {
    throw std::invalid_argument("RiglConfig: bad death rates");
  }
}

RiglMethod::RiglMethod(RiglConfig config) : config_(config) { config_.validate(); }

void RiglMethod::initialize(const std::vector<nn::ParamRef>& params, tensor::Rng& rng) {
  build_masks(params, config_.sparsity, config_.use_erk, rng);
  death_ = std::make_unique<sparse::DeathRateSchedule>(
      config_.initial_death_rate, config_.min_death_rate, 0, config_.delta_t,
      config_.rounds());
}

bool RiglMethod::is_update_step(int64_t iteration) const {
  return iteration > 0 && iteration % config_.delta_t == 0 && iteration < config_.t_end;
}

void RiglMethod::before_step(int64_t iteration) {
  if (!initialized()) throw std::logic_error("RiglMethod: not initialized");
  if (is_update_step(iteration)) {
    std::vector<nn::ParamRef> refs;
    refs.reserve(layers().size());
    for (const auto& l : layers()) refs.push_back(l.ref);
    snapshot_.capture(refs);
  }
  mask_gradients();
}

void RiglMethod::after_step(int64_t iteration) {
  if (!initialized()) throw std::logic_error("RiglMethod: not initialized");
  if (is_update_step(iteration)) {
    const double dt = death_->at(iteration);
    for (std::size_t li = 0; li < layers().size(); ++li) {
      auto& layer = layers()[li];
      const int64_t active_now = layer.mask.active_count();
      const auto drop = static_cast<int64_t>(dt * static_cast<double>(active_now));
      if (drop <= 0) continue;
      const auto active = layer.mask.active_indices();
      const auto to_drop = sparse::argdrop_smallest_magnitude(*layer.ref.value, active, drop);
      layer.mask.deactivate(to_drop);

      const auto inactive = layer.mask.inactive_indices();
      const auto to_grow =
          sparse::arggrow_largest_magnitude(snapshot_.grad(li), inactive, drop);
      layer.mask.activate(to_grow);
      for (const int64_t idx : to_grow) layer.ref.value->at(idx) = 0.0F;
    }
    snapshot_.clear();
  }
  mask_weights();
}

}  // namespace ndsnn::core
