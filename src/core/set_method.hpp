// SET-SNN baseline (Mocanu et al. 2018 applied to SNNs, Table I).
//
// Constant sparsity throughout training: every delta_t iterations drop
// the smallest-magnitude active weights at the (annealed) death rate and
// regrow the SAME number of connections uniformly at random.
#pragma once

#include "core/method.hpp"
#include "sparse/schedule.hpp"

namespace ndsnn::core {

struct SetConfig {
  double sparsity = 0.9;
  int64_t delta_t = 100;
  int64_t t_end = 10000;
  double initial_death_rate = 0.3;
  double min_death_rate = 0.05;
  bool use_erk = true;

  void validate() const;
  [[nodiscard]] int64_t rounds() const { return t_end / delta_t; }
};

class SetMethod final : public MaskedMethodBase {
 public:
  explicit SetMethod(SetConfig config);

  void initialize(const std::vector<nn::ParamRef>& params, tensor::Rng& rng) override;
  void after_step(int64_t iteration) override;
  [[nodiscard]] std::string name() const override { return "SET-SNN"; }
  [[nodiscard]] bool is_update_step(int64_t iteration) const;

 private:
  SetConfig config_;
  std::unique_ptr<sparse::DeathRateSchedule> death_;
  tensor::Rng grow_rng_{0};
};

}  // namespace ndsnn::core
