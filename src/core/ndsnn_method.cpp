#include "core/ndsnn_method.hpp"

#include <stdexcept>

#include "sparse/topk.hpp"

namespace ndsnn::core {

void NdsnnConfig::validate() const {
  if (initial_sparsity < 0.0 || initial_sparsity >= 1.0 || final_sparsity < 0.0 ||
      final_sparsity >= 1.0) {
    throw std::invalid_argument("NdsnnConfig: sparsities must be in [0, 1)");
  }
  if (initial_sparsity > final_sparsity) {
    throw std::invalid_argument("NdsnnConfig: initial_sparsity must be <= final_sparsity");
  }
  if (delta_t < 1) throw std::invalid_argument("NdsnnConfig: delta_t must be >= 1");
  if (t_end < delta_t) throw std::invalid_argument("NdsnnConfig: t_end must be >= delta_t");
  if (initial_death_rate < 0.0 || initial_death_rate > 1.0 || min_death_rate < 0.0 ||
      min_death_rate > initial_death_rate) {
    throw std::invalid_argument("NdsnnConfig: need 0 <= min_death_rate <= initial_death_rate <= 1");
  }
  if (ramp_exponent <= 0.0) throw std::invalid_argument("NdsnnConfig: ramp_exponent must be > 0");
}

NdsnnMethod::NdsnnMethod(NdsnnConfig config) : config_(config) { config_.validate(); }

void NdsnnMethod::initialize(const std::vector<nn::ParamRef>& params, tensor::Rng& rng) {
  build_masks(params, config_.initial_sparsity, config_.use_erk, rng);
  grow_rng_ = rng.fork();

  // Per-layer ramps: theta^l_i -> theta^l_f, both ERK-distributed
  // ("following the same scaling proportion", Sec. III-C step 1).
  const auto dims = layer_dims();
  const std::vector<double> theta_f =
      config_.use_erk ? sparse::erk_distribution(dims, config_.final_sparsity)
                      : sparse::uniform_distribution(dims, config_.final_sparsity);
  const std::vector<double> theta_i =
      config_.use_erk ? sparse::erk_distribution(dims, config_.initial_sparsity)
                      : sparse::uniform_distribution(dims, config_.initial_sparsity);

  const int64_t rounds = config_.rounds();
  ramps_.clear();
  ramps_.reserve(dims.size());
  for (std::size_t l = 0; l < dims.size(); ++l) {
    // ERK clamping can give theta_i^l > theta_f^l on tiny layers; pin the
    // start to min(theta_i, theta_f) to preserve the NDSNN invariant.
    const double ti = std::min(theta_i[l], theta_f[l]);
    ramps_.emplace_back(ti, theta_f[l], /*t0=*/0, config_.delta_t, rounds,
                        config_.ramp_exponent);
  }
  death_ = std::make_unique<sparse::DeathRateSchedule>(
      config_.initial_death_rate, config_.min_death_rate, /*t0=*/0, config_.delta_t, rounds);
}

bool NdsnnMethod::is_update_step(int64_t iteration) const {
  return iteration > 0 && iteration % config_.delta_t == 0 && iteration < config_.t_end;
}

double NdsnnMethod::target_sparsity(std::size_t layer, int64_t iteration) const {
  if (layer >= ramps_.size()) throw std::out_of_range("NdsnnMethod::target_sparsity");
  return ramps_[layer].at(iteration);
}

double NdsnnMethod::death_rate(int64_t iteration) const {
  if (!death_) throw std::logic_error("NdsnnMethod: not initialized");
  return death_->at(iteration);
}

void NdsnnMethod::before_step(int64_t iteration) {
  if (!initialized()) throw std::logic_error("NdsnnMethod: not initialized");
  if (is_update_step(iteration) && config_.gradient_growth) {
    // Growth needs gradients of *inactive* weights: snapshot them dense,
    // before masking (Algorithm 1 computes Grad_l via Eq. 2c).
    std::vector<nn::ParamRef> refs;
    refs.reserve(layers().size());
    for (const auto& l : layers()) refs.push_back(l.ref);
    snapshot_.capture(refs);
  }
  mask_gradients();
}

void NdsnnMethod::after_step(int64_t iteration) {
  if (!initialized()) throw std::logic_error("NdsnnMethod: not initialized");
  if (is_update_step(iteration)) {
    const double dt = death_->at(iteration);
    for (std::size_t li = 0; li < layers().size(); ++li) {
      auto& layer = layers()[li];
      const int64_t n = layer.mask.numel();
      const int64_t active_now = layer.mask.active_count();
      const double theta_t = ramps_[li].at(iteration);
      const auto counts = sparse::drop_grow_counts(n, active_now, dt, theta_t);

      // Drop: active weights closest to zero (Eq. 7 / ArgDrop).
      if (counts.drop > 0) {
        const auto active = layer.mask.active_indices();
        const auto to_drop =
            sparse::argdrop_smallest_magnitude(*layer.ref.value, active, counts.drop);
        layer.mask.deactivate(to_drop);
      }

      // Grow: inactive weights with the largest gradient magnitude
      // (Eq. 9 / ArgGrow); new weights start at zero, RigL-style.
      if (counts.grow > 0) {
        const auto inactive = layer.mask.inactive_indices();
        std::vector<int64_t> to_grow;
        if (config_.gradient_growth && snapshot_.valid()) {
          to_grow = sparse::arggrow_largest_magnitude(snapshot_.grad(li), inactive,
                                                      counts.grow);
        } else {
          // Random growth ablation.
          std::vector<int64_t> pool = inactive;
          grow_rng_.shuffle(pool);
          to_grow.assign(pool.begin(), pool.begin() + counts.grow);
        }
        layer.mask.activate(to_grow);
        for (const int64_t idx : to_grow) layer.ref.value->at(idx) = 0.0F;
      }
    }
    snapshot_.clear();
  }
  mask_weights();
}

}  // namespace ndsnn::core
