#include "core/experiment.hpp"

#include <stdexcept>

namespace ndsnn::core {

std::unique_ptr<SparseTrainingMethod> make_method(const ExperimentConfig& config,
                                                  int64_t iterations_per_epoch) {
  const int64_t total_iters = iterations_per_epoch * config.epochs;
  // Adapt the mask-update period so short runs still get ~36 drop-grow
  // rounds (the paper runs hundreds over 300 epochs; a coarse ramp is
  // what breaks NDSNN at small scale), and stop updates at 3/4 of
  // training so the final topology gets fine-tuned.
  const int64_t delta_t =
      std::min<int64_t>(config.delta_t, std::max<int64_t>(2, total_iters / 48));
  const int64_t t_end = std::max<int64_t>(delta_t, total_iters * 3 / 4);

  if (config.method == "dense") return std::make_unique<DenseMethod>();

  if (config.method == "ndsnn" || config.method == "ndsnn_random_growth" ||
      config.method == "ndsnn_linear_ramp") {
    NdsnnConfig c;
    c.initial_sparsity = config.theta_initial();
    c.final_sparsity = config.sparsity;
    c.delta_t = delta_t;
    c.t_end = t_end;
    if (config.method == "ndsnn_random_growth") c.gradient_growth = false;
    if (config.method == "ndsnn_linear_ramp") c.ramp_exponent = 1.0;
    return std::make_unique<NdsnnMethod>(c);
  }
  if (config.method == "set") {
    SetConfig c;
    c.sparsity = config.sparsity;
    c.delta_t = delta_t;
    c.t_end = t_end;
    return std::make_unique<SetMethod>(c);
  }
  if (config.method == "rigl") {
    RiglConfig c;
    c.sparsity = config.sparsity;
    c.delta_t = delta_t;
    c.t_end = t_end;
    return std::make_unique<RiglMethod>(c);
  }
  if (config.method == "lth") {
    LthConfig c;
    c.final_sparsity = config.sparsity;
    // Split the epoch budget into up to 4 IMP rounds.
    c.rounds = std::min<int64_t>(4, std::max<int64_t>(1, config.epochs / 2));
    c.epochs_per_round = std::max<int64_t>(1, config.epochs / (c.rounds + 1));
    return std::make_unique<LthMethod>(c);
  }
  if (config.method == "admm") {
    AdmmConfig c;
    c.target_sparsity = config.sparsity;
    c.admm_epochs = std::max<int64_t>(1, config.epochs * 2 / 3);
    c.projection_period = delta_t;
    return std::make_unique<AdmmMethod>(c);
  }
  if (config.method == "gmp") {
    GmpConfig c;
    c.final_sparsity = config.sparsity;
    c.delta_t = delta_t;
    c.t_end = t_end;
    return std::make_unique<GmpMethod>(c);
  }
  if (config.method == "snip") {
    SnipConfig c;
    c.sparsity = config.sparsity;
    return std::make_unique<SnipMethod>(c);
  }
  throw std::invalid_argument("make_method: unknown method '" + config.method + "'");
}

Experiment build_experiment(const ExperimentConfig& config) {
  Experiment exp;

  data::SyntheticSpec train_spec = data::synthetic_by_name(
      config.dataset, config.data_scale, config.train_samples, config.seed);
  data::SyntheticSpec test_spec = train_spec;
  test_spec.train_size = config.test_samples;
  // Same prototypes (same seed) but a disjoint sample stream.
  test_spec.sample_offset = train_spec.train_size + (int64_t{1} << 20);
  exp.train_set = std::make_unique<data::SyntheticVision>(train_spec);
  exp.test_set = std::make_unique<data::SyntheticVision>(test_spec);

  nn::ModelSpec model_spec;
  model_spec.num_classes = train_spec.num_classes;
  model_spec.in_channels = train_spec.channels;
  model_spec.timesteps = config.timesteps;
  model_spec.width_scale = config.model_scale;
  model_spec.lif.alpha = static_cast<float>(config.lif_alpha);
  model_spec.seed = config.seed;
  // VGG needs size % 32 == 0; round the synthetic resolution up.
  int64_t size = train_spec.image_size;
  if (config.arch == "vgg16") {
    size = std::max<int64_t>(32, (size + 31) / 32 * 32);
  }
  if (size != train_spec.image_size) {
    train_spec.image_size = size;
    test_spec.image_size = size;
    exp.train_set = std::make_unique<data::SyntheticVision>(train_spec);
    exp.test_set = std::make_unique<data::SyntheticVision>(test_spec);
  }
  model_spec.image_size = size;
  exp.network = nn::make_model(config.arch, model_spec);
  exp.arch = config.arch;
  exp.model_spec = model_spec;

  const int64_t iters_per_epoch =
      (config.train_samples + config.batch_size - 1) / config.batch_size;
  exp.method = make_method(config, iters_per_epoch);

  exp.trainer.epochs = config.epochs;
  exp.trainer.batch_size = config.batch_size;
  exp.trainer.learning_rate = config.learning_rate;
  exp.trainer.seed = config.seed;
  exp.trainer.verbose = config.verbose;
  return exp;
}

TrainResult run_experiment(const ExperimentConfig& config) {
  Experiment exp = build_experiment(config);
  Trainer trainer(*exp.network, *exp.method, *exp.train_set, *exp.test_set, exp.trainer);
  return trainer.run();
}

}  // namespace ndsnn::core
