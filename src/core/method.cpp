#include "core/method.hpp"

#include <cmath>
#include <stdexcept>

namespace ndsnn::core {

void MaskedMethodBase::build_masks(const std::vector<nn::ParamRef>& params,
                                   double initial_sparsity, bool use_erk,
                                   tensor::Rng& rng) {
  if (initialized()) throw std::logic_error("MaskedMethodBase: already initialized");

  std::vector<nn::ParamRef> prunable;
  for (const auto& p : params) {
    if (p.prunable) prunable.push_back(p);
  }
  if (prunable.empty()) {
    throw std::invalid_argument("MaskedMethodBase: no prunable parameters");
  }

  std::vector<sparse::LayerDims> dims;
  dims.reserve(prunable.size());
  for (const auto& p : prunable) dims.push_back(sparse::LayerDims::from_shape(p.value->shape()));

  const std::vector<double> theta =
      use_erk ? sparse::erk_distribution(dims, initial_sparsity)
              : sparse::uniform_distribution(dims, initial_sparsity);

  layers_.reserve(prunable.size());
  for (std::size_t i = 0; i < prunable.size(); ++i) {
    const int64_t n = prunable[i].value->numel();
    const auto active = static_cast<int64_t>((1.0 - theta[i]) * static_cast<double>(n) + 0.5);
    layers_.push_back(MaskedLayer{prunable[i], sparse::Mask(prunable[i].value->shape(),
                                                            active, rng)});
    auto& layer = layers_.back();
    layer.mask.apply(*layer.ref.value);
    // Variance-preserving sparse init: random masking scales each unit's
    // input variance by the density, which can silence downstream spiking
    // neurons entirely (no spikes -> no classifier gradient). Rescaling
    // survivors by 1/sqrt(density) restores the dense activation variance,
    // the sparse counterpart of Kaiming initialization.
    const double density = 1.0 - theta[i];
    if (density > 0.0 && density < 1.0) {
      const auto gain = static_cast<float>(1.0 / std::sqrt(density));
      float* w = layer.ref.value->data();
      for (int64_t j = 0; j < n; ++j) w[j] *= gain;
    }
  }
}

void MaskedMethodBase::before_step(int64_t /*iteration*/) { mask_gradients(); }

void MaskedMethodBase::mask_gradients() {
  for (auto& l : layers_) {
    float* g = l.ref.grad->data();
    const auto& bits = l.mask.bits();
    const int64_t n = l.ref.grad->numel();
    for (int64_t i = 0; i < n; ++i) {
      if (!bits[static_cast<std::size_t>(i)]) g[i] = 0.0F;
    }
  }
}

void MaskedMethodBase::mask_weights() {
  for (auto& l : layers_) l.mask.apply(*l.ref.value);
}

double MaskedMethodBase::overall_sparsity() const {
  int64_t total = 0, active = 0;
  for (const auto& l : layers_) {
    total += l.mask.numel();
    active += l.mask.active_count();
  }
  if (total == 0) return 0.0;
  return 1.0 - static_cast<double>(active) / static_cast<double>(total);
}

std::vector<double> MaskedMethodBase::layer_sparsities() const {
  std::vector<double> out;
  out.reserve(layers_.size());
  for (const auto& l : layers_) out.push_back(l.mask.sparsity());
  return out;
}

std::vector<sparse::LayerDims> MaskedMethodBase::layer_dims() const {
  std::vector<sparse::LayerDims> dims;
  dims.reserve(layers_.size());
  for (const auto& l : layers_) {
    dims.push_back(sparse::LayerDims::from_shape(l.ref.value->shape()));
  }
  return dims;
}

void GradSnapshot::capture(const std::vector<nn::ParamRef>& refs) {
  grads_.clear();
  grads_.reserve(refs.size());
  for (const auto& r : refs) grads_.push_back(*r.grad);
}

const tensor::Tensor& GradSnapshot::grad(std::size_t layer) const {
  if (layer >= grads_.size()) throw std::out_of_range("GradSnapshot::grad: bad layer");
  return grads_[layer];
}

}  // namespace ndsnn::core
