// Training-FLOPs model: layer-level operation counts for sparse SNN
// training (Table III discusses "training FLOPs"; Fig. 5's spike-rate
// cost metric is the event-driven refinement of this).
//
// Per forward pass of one layer with density rho and input spike rate r:
//   conv:   2 * rho * F * C * K^2 * OH * OW * r   MACs (events only)
//   linear: 2 * rho * out * in * r
// Backward costs ~2x forward (input grads + weight grads), and BPTT
// multiplies by T timesteps. All counts are per sample.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/network.hpp"

namespace ndsnn::core {

/// Operation counts of one prunable layer at a given density/spike rate.
struct LayerFlops {
  std::string name;
  int64_t dense_macs = 0;     ///< MACs per sample per timestep, dense, rate 1
  double density = 1.0;
  double spike_rate = 1.0;
  /// Effective MACs = dense_macs * density * spike_rate.
  [[nodiscard]] double effective_macs() const {
    return static_cast<double>(dense_macs) * density * spike_rate;
  }
};

/// Static (shape-derived) MAC counts for every prunable layer of a model
/// evaluated at `image_size` inputs. Conv output sizes are inferred by a
/// dry-run forward pass.
class FlopsModel {
 public:
  /// Build from a network; runs one probe forward at batch 1 to discover
  /// spatial dims.
  FlopsModel(nn::SpikingNetwork& network, int64_t in_channels, int64_t image_size);

  /// Total training MACs per sample: (1 fwd + 2 bwd) * T * sum(layer).
  [[nodiscard]] double training_macs_per_sample(double density, double spike_rate,
                                                int64_t timesteps) const;

  /// Inference MACs per sample (forward only).
  [[nodiscard]] double inference_macs_per_sample(double density, double spike_rate,
                                                 int64_t timesteps) const;

  [[nodiscard]] const std::vector<LayerFlops>& layers() const { return layers_; }
  [[nodiscard]] int64_t total_dense_macs() const;

 private:
  std::vector<LayerFlops> layers_;
};

}  // namespace ndsnn::core
