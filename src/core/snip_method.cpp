#include "core/snip_method.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace ndsnn::core {

void SnipConfig::validate() const {
  if (sparsity <= 0.0 || sparsity >= 1.0) {
    throw std::invalid_argument("SnipConfig: sparsity must be in (0, 1)");
  }
}

SnipMethod::SnipMethod(SnipConfig config) : config_(config) { config_.validate(); }

void SnipMethod::initialize(const std::vector<nn::ParamRef>& params, tensor::Rng& rng) {
  // Start dense; the mask is decided by the first batch's saliency.
  build_masks(params, /*initial_sparsity=*/0.0, /*use_erk=*/true, rng);
}

void SnipMethod::prune_by_saliency() {
  struct Entry {
    float saliency;
    uint32_t layer;
    int64_t index;
  };
  std::vector<Entry> all;
  int64_t total = 0;
  for (std::size_t li = 0; li < layers().size(); ++li) {
    const auto& l = layers()[li];
    const float* w = l.ref.value->data();
    const float* g = l.ref.grad->data();
    const int64_t n = l.mask.numel();
    total += n;
    for (int64_t i = 0; i < n; ++i) {
      all.push_back({std::fabs(g[i] * w[i]), static_cast<uint32_t>(li), i});
    }
  }
  const auto keep = static_cast<int64_t>(
      (1.0 - config_.sparsity) * static_cast<double>(total) + 0.5);
  const int64_t prune_count = total - keep;
  if (prune_count <= 0) {
    pruned_ = true;
    return;
  }

  if (config_.per_layer) {
    // Rank within each layer to its own quota.
    for (std::size_t li = 0; li < layers().size(); ++li) {
      auto& l = layers()[li];
      const float* w = l.ref.value->data();
      const float* g = l.ref.grad->data();
      const int64_t n = l.mask.numel();
      std::vector<int64_t> idx(static_cast<std::size_t>(n));
      for (int64_t i = 0; i < n; ++i) idx[static_cast<std::size_t>(i)] = i;
      const auto layer_keep = static_cast<int64_t>(
          (1.0 - config_.sparsity) * static_cast<double>(n) + 0.5);
      std::nth_element(idx.begin(), idx.begin() + (n - layer_keep), idx.end(),
                       [&](int64_t a, int64_t b) {
                         return std::fabs(g[a] * w[a]) < std::fabs(g[b] * w[b]);
                       });
      for (int64_t k = 0; k < n - layer_keep; ++k) {
        l.mask.set(idx[static_cast<std::size_t>(k)], false);
      }
      l.mask.apply(*l.ref.value);
    }
  } else {
    std::nth_element(all.begin(), all.begin() + prune_count, all.end(),
                     [](const Entry& a, const Entry& b) {
                       if (a.saliency != b.saliency) return a.saliency < b.saliency;
                       if (a.layer != b.layer) return a.layer < b.layer;
                       return a.index < b.index;
                     });
    for (int64_t k = 0; k < prune_count; ++k) {
      const Entry& e = all[static_cast<std::size_t>(k)];
      layers()[e.layer].mask.set(e.index, false);
    }
    for (auto& l : layers()) l.mask.apply(*l.ref.value);
  }
  pruned_ = true;
}

void SnipMethod::before_step(int64_t /*iteration*/) {
  if (!initialized()) throw std::logic_error("SnipMethod: not initialized");
  if (!pruned_) prune_by_saliency();
  mask_gradients();
}

void SnipMethod::after_step(int64_t /*iteration*/) { mask_weights(); }

}  // namespace ndsnn::core
