// Dense baseline: no sparsification at all.
#pragma once

#include "core/method.hpp"

namespace ndsnn::core {

class DenseMethod final : public SparseTrainingMethod {
 public:
  void initialize(const std::vector<nn::ParamRef>& params, tensor::Rng& rng) override;
  void before_step(int64_t iteration) override { (void)iteration; }
  void after_step(int64_t iteration) override { (void)iteration; }
  [[nodiscard]] double overall_sparsity() const override { return 0.0; }
  [[nodiscard]] std::vector<double> layer_sparsities() const override;
  [[nodiscard]] std::string name() const override { return "Dense"; }

 private:
  std::size_t prunable_count_ = 0;
};

}  // namespace ndsnn::core
