// Experiment harness shared by benches and examples: build a (scaled)
// model + synthetic dataset + method by name, train, return the trace.
//
// The `scale` preset maps the paper's GPU-scale experiments onto CPU
// budgets while preserving topology; see DESIGN.md section 2.
#pragma once

#include <memory>
#include <string>

#include "core/admm_method.hpp"
#include "core/cost_model.hpp"
#include "core/dense_method.hpp"
#include "core/gmp_method.hpp"
#include "core/lth_method.hpp"
#include "core/ndsnn_method.hpp"
#include "core/rigl_method.hpp"
#include "core/set_method.hpp"
#include "core/snip_method.hpp"
#include "core/trainer.hpp"
#include "data/synthetic.hpp"
#include "nn/models/zoo.hpp"

namespace ndsnn::core {

/// One experiment cell: architecture x dataset x method x sparsity.
struct ExperimentConfig {
  std::string arch = "vgg16";        ///< vgg16 | resnet19 | lenet5
  std::string dataset = "cifar10";   ///< cifar10 | cifar100 | tiny_imagenet
  std::string method = "ndsnn";  ///< ndsnn | set | rigl | lth | admm | gmp | snip | dense
  double sparsity = 0.9;             ///< target (final) sparsity
  double initial_sparsity = -1.0;    ///< NDSNN theta_i; < 0 = 0.5 * sparsity
  int64_t timesteps = 5;
  int64_t epochs = 10;
  int64_t batch_size = 32;
  int64_t train_samples = 512;
  int64_t test_samples = 128;
  double model_scale = 0.5;          ///< width multiplier
  double data_scale = 0.25;          ///< resolution multiplier
  int64_t delta_t = 16;              ///< mask-update period (iterations)
  double learning_rate = 0.2;        ///< paper's 0.3 is tuned for GPU scale
  double lif_alpha = 0.75;           ///< membrane leak (CPU-scale tuning)
  uint64_t seed = 42;
  bool verbose = false;

  [[nodiscard]] double theta_initial() const {
    return initial_sparsity >= 0.0 ? initial_sparsity : 0.5 * sparsity;
  }
};

/// Materialized experiment: model + datasets + method, ready to train.
struct Experiment {
  std::unique_ptr<nn::SpikingNetwork> network;
  std::unique_ptr<data::SyntheticVision> train_set;
  std::unique_ptr<data::SyntheticVision> test_set;
  std::unique_ptr<SparseTrainingMethod> method;
  TrainerConfig trainer;
  /// The exact spec the network was built from (resolution rounding
  /// applied), so callers can tag checkpoints with an architecture
  /// record (nn::CheckpointMeta) that rebuilds it.
  std::string arch;
  nn::ModelSpec model_spec;
};

/// Build every component of `config`. Throws on unknown names.
[[nodiscard]] Experiment build_experiment(const ExperimentConfig& config);

/// build + train in one call.
[[nodiscard]] TrainResult run_experiment(const ExperimentConfig& config);

/// Construct just the method (for tests and custom loops).
[[nodiscard]] std::unique_ptr<SparseTrainingMethod> make_method(
    const ExperimentConfig& config, int64_t iterations_per_epoch);

}  // namespace ndsnn::core
