// Gradual Magnitude Pruning (Zhu & Gupta 2017): an additional
// dense-to-sparse baseline from the DST literature. Like NDSNN it uses
// the cubic ramp, but it only PRUNES (never regrows) and starts dense --
// so it isolates the value of NDSNN's sparse start and regrowth.
#pragma once

#include "core/method.hpp"
#include "sparse/schedule.hpp"

namespace ndsnn::core {

struct GmpConfig {
  double final_sparsity = 0.9;
  int64_t delta_t = 100;   ///< pruning period in iterations
  int64_t t_end = 10000;   ///< ramp end
  bool use_erk = true;     ///< distribute the final sparsity via ERK

  void validate() const;
  [[nodiscard]] int64_t rounds() const { return t_end / delta_t; }
};

class GmpMethod final : public MaskedMethodBase {
 public:
  explicit GmpMethod(GmpConfig config);

  void initialize(const std::vector<nn::ParamRef>& params, tensor::Rng& rng) override;
  void after_step(int64_t iteration) override;
  [[nodiscard]] std::string name() const override { return "GMP"; }
  [[nodiscard]] bool is_update_step(int64_t iteration) const;

 private:
  GmpConfig config_;
  std::vector<sparse::SparsityRamp> ramps_;
};

}  // namespace ndsnn::core
