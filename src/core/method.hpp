// SparseTrainingMethod: the strategy interface every sparsification
// scheme implements (NDSNN, SET, RigL, LTH, ADMM, Dense).
//
// The Trainer calls, per optimizer iteration:
//   before_step(t)  -- after backward, before SGD: mask/penalize grads
//   after_step(t)   -- after SGD: topology updates, re-mask weights
// and per epoch:
//   on_epoch_begin(e) -- round-based methods (LTH, ADMM) act here.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/layer.hpp"
#include "sparse/distribution.hpp"
#include "sparse/mask.hpp"
#include "tensor/random.hpp"

namespace ndsnn::core {

class SparseTrainingMethod {
 public:
  virtual ~SparseTrainingMethod() = default;
  SparseTrainingMethod() = default;
  SparseTrainingMethod(const SparseTrainingMethod&) = delete;
  SparseTrainingMethod& operator=(const SparseTrainingMethod&) = delete;

  /// Bind to the model's prunable parameters and build initial masks.
  /// Must be called exactly once before training.
  virtual void initialize(const std::vector<nn::ParamRef>& params, tensor::Rng& rng) = 0;

  virtual void before_step(int64_t iteration) = 0;
  virtual void after_step(int64_t iteration) = 0;
  virtual void on_epoch_begin(int64_t epoch) { (void)epoch; }

  /// Parameter-weighted sparsity over prunable weights right now.
  [[nodiscard]] virtual double overall_sparsity() const = 0;
  [[nodiscard]] virtual std::vector<double> layer_sparsities() const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Shared implementation for mask-based methods: owns one Mask per
/// prunable parameter and provides drop/grow plumbing.
class MaskedMethodBase : public SparseTrainingMethod {
 public:
  void before_step(int64_t iteration) override;
  [[nodiscard]] double overall_sparsity() const override;
  [[nodiscard]] std::vector<double> layer_sparsities() const override;

 protected:
  struct MaskedLayer {
    nn::ParamRef ref;
    sparse::Mask mask;
  };

  /// Extract prunable params, build ERK (or uniform) masks at
  /// `initial_sparsity`, randomize active sets, zero masked weights.
  void build_masks(const std::vector<nn::ParamRef>& params, double initial_sparsity,
                   bool use_erk, tensor::Rng& rng);

  /// Zero gradients of masked-out weights ("only update active weights").
  void mask_gradients();
  /// Zero weights of masked-out connections.
  void mask_weights();

  [[nodiscard]] std::vector<MaskedLayer>& layers() { return layers_; }
  [[nodiscard]] const std::vector<MaskedLayer>& layers() const { return layers_; }
  [[nodiscard]] bool initialized() const { return !layers_.empty(); }

  /// Layer dims for distribution computations.
  [[nodiscard]] std::vector<sparse::LayerDims> layer_dims() const;

 private:
  std::vector<MaskedLayer> layers_;
};

/// Snapshot of dense gradients taken in before_step on update rounds, so
/// growth criteria can see gradients of inactive weights.
class GradSnapshot {
 public:
  void capture(const std::vector<nn::ParamRef>& refs);
  [[nodiscard]] const tensor::Tensor& grad(std::size_t layer) const;
  [[nodiscard]] bool valid() const { return !grads_.empty(); }
  void clear() { grads_.clear(); }

 private:
  std::vector<tensor::Tensor> grads_;
};

}  // namespace ndsnn::core
