// RigL-SNN baseline (Evci et al. 2020 applied to SNNs, Table I).
//
// Like SET but regrowth picks the inactive weights with the largest
// gradient magnitude. Sparsity stays constant; only the topology moves.
#pragma once

#include "core/method.hpp"
#include "sparse/schedule.hpp"

namespace ndsnn::core {

struct RiglConfig {
  double sparsity = 0.9;
  int64_t delta_t = 100;
  int64_t t_end = 10000;
  double initial_death_rate = 0.3;  ///< RigL alpha (cosine-annealed)
  double min_death_rate = 0.0;
  bool use_erk = true;

  void validate() const;
  [[nodiscard]] int64_t rounds() const { return t_end / delta_t; }
};

class RiglMethod final : public MaskedMethodBase {
 public:
  explicit RiglMethod(RiglConfig config);

  void initialize(const std::vector<nn::ParamRef>& params, tensor::Rng& rng) override;
  void before_step(int64_t iteration) override;
  void after_step(int64_t iteration) override;
  [[nodiscard]] std::string name() const override { return "RigL-SNN"; }
  [[nodiscard]] bool is_update_step(int64_t iteration) const;

 private:
  RiglConfig config_;
  std::unique_ptr<sparse::DeathRateSchedule> death_;
  GradSnapshot snapshot_;
};

}  // namespace ndsnn::core
