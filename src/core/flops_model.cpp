#include "core/flops_model.hpp"

#include <stdexcept>

namespace ndsnn::core {

FlopsModel::FlopsModel(nn::SpikingNetwork& network, int64_t in_channels,
                       int64_t image_size) {
  // Probe forward to let conv layers record their geometry; then read MAC
  // counts from the weight shapes. For convs the spatial factor is the
  // output plane, recovered as (weight-output-channels -> activation) --
  // we conservatively recompute from the input size by tracking pooling
  // is not possible generically, so we instead derive counts purely from
  // weight shapes times the probe activations' sizes.
  //
  // Simpler and exact: dense MACs of a conv = numel(weight) * OH * OW and
  // of a linear = numel(weight). OH/OW vary per layer; the probe lets
  // each layer validate shapes, and we approximate OH*OW by the weight's
  // receptive geometry via a per-layer activation trace below.
  tensor::Tensor probe(tensor::Shape{1, in_channels, image_size, image_size}, 0.5F);
  (void)network.predict(probe);

  // Walk the body layers, mirroring the forward shape propagation for the
  // layer types in this library.
  int64_t h = image_size, w = image_size;
  auto& body = network.body();
  for (std::size_t i = 0; i < body.size(); ++i) {
    auto& layer = body.layer(i);
    const std::string name = layer.name();
    auto params = layer.params();
    const nn::ParamRef* weight = nullptr;
    for (const auto& p : params) {
      if (p.prunable) weight = &p;
    }
    if (name.rfind("Conv2d", 0) == 0 && weight != nullptr) {
      // Parse stride from the name "Conv2d(in->out, k=K, s=S, p=P)".
      const auto spos = name.find("s=");
      const int64_t stride = spos == std::string::npos ? 1 : std::stoll(name.substr(spos + 2));
      const auto ppos = name.find("p=");
      const int64_t pad = ppos == std::string::npos ? 0 : std::stoll(name.substr(ppos + 2));
      const int64_t k = weight->value->dim(2);
      h = (h + 2 * pad - k) / stride + 1;
      w = (w + 2 * pad - k) / stride + 1;
      layers_.push_back({name, weight->value->numel() * h * w, 1.0, 1.0});
    } else if (name.rfind("Linear", 0) == 0 && weight != nullptr) {
      layers_.push_back({name, weight->value->numel(), 1.0, 1.0});
    } else if (name.rfind("AvgPool2d", 0) == 0 || name.rfind("MaxPool2d", 0) == 0) {
      const auto kpos = name.find("k=");
      const int64_t k = kpos == std::string::npos ? 2 : std::stoll(name.substr(kpos + 2));
      h /= k;
      w /= k;
    } else if (name.rfind("GlobalAvgPool", 0) == 0 || name.rfind("Flatten", 0) == 0) {
      h = 1;
      w = 1;
    } else if (name.rfind("ResidualBlock", 0) == 0) {
      // Blocks manage their own convs; approximate with the sum of their
      // prunable weights at the current resolution (stride inferred from
      // whether the block downsamples: shortcut conv present => stride 2).
      int64_t stride = params.size() > 6 ? 2 : 1;
      h /= stride;
      w /= stride;
      int64_t macs = 0;
      for (const auto& p : params) {
        if (p.prunable) macs += p.value->numel() * h * w;
      }
      layers_.push_back({name, macs, 1.0, 1.0});
    }
  }
  if (layers_.empty()) {
    throw std::invalid_argument("FlopsModel: network has no prunable layers");
  }
}

int64_t FlopsModel::total_dense_macs() const {
  int64_t total = 0;
  for (const auto& l : layers_) total += l.dense_macs;
  return total;
}

double FlopsModel::inference_macs_per_sample(double density, double spike_rate,
                                             int64_t timesteps) const {
  if (density < 0.0 || density > 1.0 || spike_rate < 0.0 || spike_rate > 1.0) {
    throw std::invalid_argument("FlopsModel: density/spike_rate must be in [0, 1]");
  }
  if (timesteps < 1) throw std::invalid_argument("FlopsModel: timesteps must be >= 1");
  return 2.0 * static_cast<double>(total_dense_macs()) * density * spike_rate *
         static_cast<double>(timesteps);
}

double FlopsModel::training_macs_per_sample(double density, double spike_rate,
                                            int64_t timesteps) const {
  // forward + ~2x backward.
  return 3.0 * inference_macs_per_sample(density, spike_rate, timesteps);
}

}  // namespace ndsnn::core
