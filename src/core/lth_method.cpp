#include "core/lth_method.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sparse/topk.hpp"

namespace ndsnn::core {

void LthConfig::validate() const {
  if (final_sparsity <= 0.0 || final_sparsity >= 1.0) {
    throw std::invalid_argument("LthConfig: final_sparsity must be in (0, 1)");
  }
  if (rounds < 1) throw std::invalid_argument("LthConfig: rounds must be >= 1");
  if (epochs_per_round < 1) {
    throw std::invalid_argument("LthConfig: epochs_per_round must be >= 1");
  }
}

double LthConfig::sparsity_after_round(int64_t r) const {
  if (r <= 0) return 0.0;
  if (r >= rounds) return final_sparsity;
  // Keep-ratio shrinks geometrically: keep_r = keep_final^(r/rounds).
  const double keep_final = 1.0 - final_sparsity;
  return 1.0 - std::pow(keep_final, static_cast<double>(r) / static_cast<double>(rounds));
}

LthMethod::LthMethod(LthConfig config) : config_(config) { config_.validate(); }

void LthMethod::initialize(const std::vector<nn::ParamRef>& params, tensor::Rng& rng) {
  // Round 0 trains DENSE (sparsity 0): that is the point Fig. 1 makes
  // about LTH's training inefficiency.
  build_masks(params, /*initial_sparsity=*/0.0, /*use_erk=*/true, rng);
  initial_weights_.clear();
  initial_weights_.reserve(layers().size());
  for (const auto& l : layers()) initial_weights_.push_back(*l.ref.value);
}

void LthMethod::on_epoch_begin(int64_t epoch) {
  if (!initialized()) throw std::logic_error("LthMethod: not initialized");
  if (epoch == 0 || epoch % config_.epochs_per_round != 0) return;
  const int64_t r = epoch / config_.epochs_per_round;
  if (r > config_.rounds || r <= round_) return;
  round_ = r;
  prune_to(config_.sparsity_after_round(r));
  if (config_.rewind) rewind_weights();
}

void LthMethod::prune_to(double target) {
  // Global magnitude pruning: exact selection of the smallest-magnitude
  // active weights across all layers (threshold-based pruning mishandles
  // ties, e.g. freshly initialized identical magnitudes).
  int64_t total = 0;
  for (const auto& l : layers()) total += l.mask.numel();
  const auto keep = static_cast<int64_t>((1.0 - target) * static_cast<double>(total) + 0.5);

  struct Entry {
    float magnitude;
    uint32_t layer;
    int64_t index;
  };
  std::vector<Entry> active;
  active.reserve(static_cast<std::size_t>(total));
  for (std::size_t li = 0; li < layers().size(); ++li) {
    const auto& l = layers()[li];
    const float* w = l.ref.value->data();
    const auto& bits = l.mask.bits();
    for (int64_t i = 0; i < l.mask.numel(); ++i) {
      if (bits[static_cast<std::size_t>(i)]) {
        active.push_back({std::fabs(w[i]), static_cast<uint32_t>(li), i});
      }
    }
  }
  const auto prune_count = static_cast<int64_t>(active.size()) - keep;
  if (prune_count <= 0) return;
  std::nth_element(active.begin(), active.begin() + prune_count, active.end(),
                   [](const Entry& a, const Entry& b) {
                     if (a.magnitude != b.magnitude) return a.magnitude < b.magnitude;
                     if (a.layer != b.layer) return a.layer < b.layer;
                     return a.index < b.index;
                   });
  for (int64_t k = 0; k < prune_count; ++k) {
    const Entry& e = active[static_cast<std::size_t>(k)];
    layers()[e.layer].mask.set(e.index, false);
  }
  for (auto& l : layers()) l.mask.apply(*l.ref.value);
}

void LthMethod::rewind_weights() {
  for (std::size_t li = 0; li < layers().size(); ++li) {
    auto& l = layers()[li];
    *l.ref.value = initial_weights_[li];
    l.mask.apply(*l.ref.value);
  }
}

void LthMethod::after_step(int64_t /*iteration*/) { mask_weights(); }

}  // namespace ndsnn::core
