// Process-wide metrics registry: counters, gauges, and log-bucketed
// latency histograms for the serving path.
//
// Hot-path updates never serialize: counters and gauges are single
// relaxed atomics, and histograms shard their bucket arrays per thread
// group (round-robin thread -> shard assignment) so concurrent
// BatchExecutor workers and pool lanes increment disjoint cache lines.
// Reads (snapshot(), dump_text(), dump_json()) merge the shards; they
// are approximate under concurrent writes, exact once writers quiesce.
//
// Histogram design: fixed log-spaced buckets (kSubBuckets per factor
// of 2, ~±9% relative resolution) spanning [1, 2^30) in whatever unit
// the caller records — the runtime records microseconds, covering 1 us
// to ~18 min — plus underflow/overflow buckets. Percentiles use the
// nearest-rank rule over the merged bucket counts and report the
// geometric mean of the winning bucket's bounds, so the reported p50
// is within one bucket width of the exact sample percentile
// (tests/util/metrics_test.cpp pins both the analytic bucket math and
// a fuzz comparison against a sorted-vector reference).
//
// The registry hands out stable references: a Counter/Gauge/Histogram
// pointer obtained once (e.g. cached in a function-local static) stays
// valid for the process lifetime. reset() zeroes values but never
// invalidates references.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace ndsnn::util {

class JsonWriter;

/// Monotonically increasing event count.
class Counter {
 public:
  void add(int64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Last-written instantaneous value (queue depth, active workers, ...).
class Gauge {
 public:
  void set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  [[nodiscard]] int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Merged read-side view of a Histogram (see percentile()).
struct HistogramSnapshot {
  static constexpr int kSubBuckets = 4;    ///< buckets per factor of 2
  static constexpr int kLogBuckets = 120;  ///< covers [1, 2^30)
  /// Total layout: [0] underflow (< 1), [1..kLogBuckets] log-spaced,
  /// [kLogBuckets + 1] overflow (>= 2^30).
  static constexpr int kBuckets = kLogBuckets + 2;

  int64_t count = 0;
  double sum = 0.0;
  double max = 0.0;
  std::array<int64_t, kBuckets> counts{};

  /// Bucket that holds `v` (NaN and negatives land in underflow).
  [[nodiscard]] static int bucket_index(double v);
  /// Lower bound of bucket `i` (i >= 1); bucket 0 has no lower bound.
  [[nodiscard]] static double bucket_lower(int i);
  /// Representative value reported for bucket `i`: geometric mean of
  /// its bounds (underflow: half the minimum; overflow: its lower
  /// bound).
  [[nodiscard]] static double bucket_mid(int i);

  [[nodiscard]] double mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
  /// Nearest-rank percentile, q in [0, 1]: the representative of the
  /// first bucket whose cumulative count reaches ceil(q * count).
  /// Returns 0 when empty.
  [[nodiscard]] double percentile(double q) const;
};

/// Sharded log-bucket histogram; record() is wait-free per shard.
class Histogram {
 public:
  static constexpr int kShards = 8;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record(double v);
  [[nodiscard]] HistogramSnapshot snapshot() const;
  void reset();

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<int64_t>, HistogramSnapshot::kBuckets> counts{};
    std::atomic<double> sum{0.0};
    std::atomic<double> max{0.0};
  };
  std::array<Shard, kShards> shards_{};
};

/// Name -> metric map with process-wide singleton access. Lookups lock;
/// cache the returned reference on hot paths (function-local static).
class MetricsRegistry {
 public:
  [[nodiscard]] static MetricsRegistry& global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  [[nodiscard]] Histogram& histogram(const std::string& name);

  /// One line per metric, sorted by name: "counter name value",
  /// "histogram name count=.. mean=.. p50=.. p95=.. p99=.. max=..".
  [[nodiscard]] std::string dump_text() const;
  /// Emit one JSON object value ({"counters": {...}, "gauges": {...},
  /// "histograms": {...}}) at the writer's current position.
  void dump_json(JsonWriter& json) const;

  /// Zero every registered metric (bench/test isolation). References
  /// stay valid.
  void reset();

 private:
  mutable std::mutex mu_;  ///< guards the maps, not the metric values
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace ndsnn::util
