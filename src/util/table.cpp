#include "util/table.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace ndsnn::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: header must be non-empty");
}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("Table: row arity " + std::to_string(row.size()) +
                                " != header arity " + std::to_string(header_.size()));
  }
  rows_.push_back(std::move(row));
}

std::string Table::str() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > width[c]) width[c] = row[c].size();
    }
  }

  auto emit_row = [&](const std::vector<std::string>& row, std::ostringstream& out) {
    out << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << ' ' << row[c] << std::string(width[c] - row[c].size(), ' ') << " |";
    }
    out << '\n';
  };

  std::ostringstream out;
  emit_row(header_, out);
  out << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out << std::string(width[c] + 2, '-') << '|';
  }
  out << '\n';
  for (const auto& row : rows_) emit_row(row, out);
  return out.str();
}

void Table::print() const {
  const std::string rendered = str();
  std::fwrite(rendered.data(), 1, rendered.size(), stdout);
  std::fflush(stdout);
}

std::string fmt(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

}  // namespace ndsnn::util
