#include "util/cpuinfo.hpp"

#include <atomic>
#include <cstdlib>

namespace ndsnn::util::simd {

namespace {

Tier probe() {
#if defined(__x86_64__) || defined(_M_X64)
#if defined(__GNUC__) || defined(__clang__)
  // The AVX2 bodies use FMA for the quantised kernels, so both bits
  // must be present before the tier is offered.
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return Tier::kAvx2;
  }
#endif
  return Tier::kVector;
#elif defined(__aarch64__)
  // NEON is architectural on AArch64; the vector-extension bodies (and
  // the guarded NEON blocks in simd_kernels) compile to it directly.
  return Tier::kVector;
#else
  return Tier::kScalar;
#endif
}

Tier clamp(Tier t, Tier ceiling) { return t > ceiling ? ceiling : t; }

Tier env_tier() {
  const char* v = std::getenv("NDSNN_KERNEL_TIER");
  Tier t = Tier::kAuto;
  if (v != nullptr) parse(v, &t);  // unknown values fall through to kAuto
  return t;
}

std::atomic<Tier> g_forced{Tier::kAuto};

}  // namespace

Tier detected() {
  static const Tier tier = probe();
  return tier;
}

Tier active() {
  const Tier forced = g_forced.load(std::memory_order_relaxed);
  if (forced != Tier::kAuto) return clamp(forced, detected());
  static const Tier env = env_tier();
  if (env != Tier::kAuto) return clamp(env, detected());
  return detected();
}

Tier resolve(Tier request) {
  if (request == Tier::kAuto) return active();
  return clamp(request, detected());
}

void force(Tier tier) { g_forced.store(tier, std::memory_order_relaxed); }

const char* name(Tier tier) {
  switch (tier) {
    case Tier::kAuto: return "auto";
    case Tier::kScalar: return "scalar";
    case Tier::kVector: return "vector";
    case Tier::kAvx2: return "avx2";
  }
  return "?";
}

bool parse(std::string_view text, Tier* out) {
  if (text == "auto") *out = Tier::kAuto;
  else if (text == "scalar") *out = Tier::kScalar;
  else if (text == "vector") *out = Tier::kVector;
  else if (text == "avx2") *out = Tier::kAvx2;
  else return false;
  return true;
}

}  // namespace ndsnn::util::simd
