// Minimal JSON emitter for the bench --json outputs.
//
// Streams a single document into a string with automatic comma
// placement; no DOM, no parsing. Usage:
//
//   util::JsonWriter json;
//   json.begin_object();
//   json.key("bench").value("sparse_inference");
//   json.key("rows").begin_array();
//   json.begin_object().key("ms").value(1.25).end_object();
//   json.end_array().end_object();
//   write json.str() to the --json path
//
// CI runs the benches with --json, uploads the files as workflow
// artifacts, and a snapshot is checked in as BENCH_*.json so the perf
// trajectory of the repo is recorded next to the code.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ndsnn::util {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object key; must be followed by a value or container.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(double v);  ///< non-finite values emit null
  JsonWriter& value(int64_t v);
  JsonWriter& value(int v) { return value(static_cast<int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }

  /// key + value in one call.
  template <typename T>
  JsonWriter& kv(std::string_view k, T v) {
    key(k);
    return value(v);
  }

  /// The finished document. Valid once every container is closed.
  [[nodiscard]] const std::string& str() const { return out_; }

  /// Write str() to a file. Throws std::runtime_error when the file
  /// cannot be opened.
  void write_file(const std::string& path) const;

 private:
  void comma_();

  std::string out_;
  std::vector<bool> need_comma_;  ///< per open container
  bool after_key_ = false;
};

}  // namespace ndsnn::util
