#include "util/fault_injection.hpp"

#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace ndsnn::util::fault {

std::atomic<int64_t> FaultInjector::armed_sites_{0};

namespace {

/// splitmix64 finalizer: full-avalanche mix of a 64-bit state.
uint64_t mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// FNV-1a over the site name: stable across runs and platforms, so the
/// (seed, site, check#) -> fire decision is reproducible everywhere.
uint64_t hash_name(const char* s) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (; *s != '\0'; ++s) h = (h ^ static_cast<uint8_t>(*s)) * 0x100000001B3ULL;
  return h;
}

/// Uniform [0, 1) from (seed, site hash, check index).
double decide(uint64_t seed, uint64_t site_hash, int64_t check) {
  const uint64_t bits = mix64(seed ^ mix64(site_hash ^ mix64(static_cast<uint64_t>(check))));
  // Top 53 bits -> the unit interval at double precision.
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

}  // namespace

FaultInjector& FaultInjector::global() {
  static FaultInjector* instance = [] {
    auto* inj = new FaultInjector();
    if (const char* env = std::getenv("NDSNN_FAULTS"); env != nullptr && *env != '\0') {
      inj->configure(env);
    }
    return inj;
  }();
  return *instance;
}

namespace {
/// NDSNN_FAULTS must be parsed before the first should_fail(): its fast
/// path only reads armed_sites_ and never constructs the singleton, so
/// an env-armed process would otherwise run fault-free forever. This TU
/// is always linked when any fault site exists (active() references
/// armed_sites_, defined above), so the env is read exactly once, here.
const bool g_env_spec_loaded = [] {
  (void)FaultInjector::global();
  return true;
}();
}  // namespace

void FaultInjector::configure(const std::string& spec) {
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t end = spec.find_first_of(";,", start);
    if (end == std::string::npos) end = spec.size();
    const std::string clause = spec.substr(start, end - start);
    start = end + 1;
    if (clause.empty()) continue;
    const std::size_t eq = clause.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= clause.size()) {
      throw std::invalid_argument("NDSNN_FAULTS: clause must be key=value, got '" +
                                  clause + "'");
    }
    const std::string key = clause.substr(0, eq);
    std::string value = clause.substr(eq + 1);
    if (key == "seed") {
      try {
        set_seed(std::stoull(value));
      } catch (const std::exception&) {
        throw std::invalid_argument("NDSNN_FAULTS: bad seed '" + value + "'");
      }
      continue;
    }
    // <site>=<prob>[xMAX][+SKIP]
    Rule rule;
    const std::size_t plus = value.find('+');
    if (plus != std::string::npos) {
      try {
        rule.skip = std::stoll(value.substr(plus + 1));
      } catch (const std::exception&) {
        throw std::invalid_argument("NDSNN_FAULTS: bad skip in '" + clause + "'");
      }
      if (rule.skip < 0) {
        throw std::invalid_argument("NDSNN_FAULTS: negative skip in '" + clause + "'");
      }
      value = value.substr(0, plus);
    }
    const std::size_t x = value.find('x');
    if (x != std::string::npos) {
      try {
        rule.max_fires = std::stoll(value.substr(x + 1));
      } catch (const std::exception&) {
        throw std::invalid_argument("NDSNN_FAULTS: bad max-fires in '" + clause + "'");
      }
      if (rule.max_fires < 0) {
        throw std::invalid_argument("NDSNN_FAULTS: negative max-fires in '" + clause + "'");
      }
      value = value.substr(0, x);
    }
    try {
      rule.probability = std::stod(value);
    } catch (const std::exception&) {
      throw std::invalid_argument("NDSNN_FAULTS: bad probability in '" + clause + "'");
    }
    if (rule.probability < 0.0 || rule.probability > 1.0) {
      throw std::invalid_argument("NDSNN_FAULTS: probability outside [0,1] in '" +
                                  clause + "'");
    }
    arm(key, rule);
  }
}

void FaultInjector::arm(const std::string& site, Rule rule) {
  const std::lock_guard<std::mutex> lk(mu_);
  Site& s = sites_[site];
  if (!s.armed) armed_sites_.fetch_add(1, std::memory_order_relaxed);
  s.rule = rule;
  s.armed = true;
  s.checks = 0;
  s.fires = 0;
}

void FaultInjector::disarm(const std::string& site) {
  const std::lock_guard<std::mutex> lk(mu_);
  const auto it = sites_.find(site);
  if (it == sites_.end() || !it->second.armed) return;
  it->second.armed = false;
  armed_sites_.fetch_sub(1, std::memory_order_relaxed);
}

void FaultInjector::reset() {
  const std::lock_guard<std::mutex> lk(mu_);
  int64_t armed = 0;
  for (const auto& [_, s] : sites_) armed += s.armed ? 1 : 0;
  armed_sites_.fetch_sub(armed, std::memory_order_relaxed);
  sites_.clear();
}

void FaultInjector::set_seed(uint64_t seed) {
  const std::lock_guard<std::mutex> lk(mu_);
  seed_ = seed;
}

uint64_t FaultInjector::seed() const {
  const std::lock_guard<std::mutex> lk(mu_);
  return seed_;
}

bool FaultInjector::should_fire(const char* site) {
  const std::lock_guard<std::mutex> lk(mu_);
  const auto it = sites_.find(site);
  if (it == sites_.end() || !it->second.armed) return false;
  Site& s = it->second;
  const int64_t check = s.checks++;
  if (check < s.rule.skip) return false;
  if (s.rule.max_fires >= 0 && s.fires >= s.rule.max_fires) return false;
  // The decision depends only on (seed, site, check index): replaying a
  // run with the same seed reproduces the same fault schedule.
  if (decide(seed_, hash_name(site), check) >= s.rule.probability) return false;
  ++s.fires;
  return true;
}

int64_t FaultInjector::checks(const std::string& site) const {
  const std::lock_guard<std::mutex> lk(mu_);
  const auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.checks;
}

int64_t FaultInjector::fires(const std::string& site) const {
  const std::lock_guard<std::mutex> lk(mu_);
  const auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.fires;
}

std::string FaultInjector::summary() const {
  const std::lock_guard<std::mutex> lk(mu_);
  std::ostringstream out;
  out << "faults seed=" << seed_;
  for (const auto& [name, s] : sites_) {
    if (!s.armed) continue;
    out << " " << name << " p=" << s.rule.probability << " fired " << s.fires << "/"
        << s.checks;
  }
  return out.str();
}

}  // namespace ndsnn::util::fault
