#include "util/metrics.hpp"

#include <cmath>
#include <sstream>

#include "util/json.hpp"

namespace ndsnn::util {

namespace {

/// Round-robin thread -> shard assignment: consecutive threads hit
/// different cache lines even when only a few are alive.
std::size_t shard_for_thread() {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned id = next.fetch_add(1, std::memory_order_relaxed);
  return id % static_cast<unsigned>(Histogram::kShards);
}

void atomic_add_double(std::atomic<double>& a, double d) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
  }
}

void atomic_max_double(std::atomic<double>& a, double d) {
  double cur = a.load(std::memory_order_relaxed);
  while (cur < d && !a.compare_exchange_weak(cur, d, std::memory_order_relaxed)) {
  }
}

}  // namespace

int HistogramSnapshot::bucket_index(double v) {
  if (!(v >= 1.0)) return 0;  // also catches NaN and negatives
  // Overflow check BEFORE the cast: for v >= 2^kLogBuckets/kSubBuckets
  // (infinity included) the float-to-int conversion below would be UB.
  if (v >= std::exp2(static_cast<double>(kLogBuckets) / kSubBuckets)) return kBuckets - 1;
  const int i = static_cast<int>(std::floor(std::log2(v) * kSubBuckets)) + 1;
  return i >= kBuckets - 1 ? kBuckets - 1 : i;
}

double HistogramSnapshot::bucket_lower(int i) {
  return std::exp2(static_cast<double>(i - 1) / kSubBuckets);
}

double HistogramSnapshot::bucket_mid(int i) {
  if (i <= 0) return 0.5;                            // underflow: < 1
  if (i >= kBuckets - 1) return bucket_lower(i);     // overflow: open above
  return std::sqrt(bucket_lower(i) * bucket_lower(i + 1));
}

double HistogramSnapshot::percentile(double q) const {
  if (count <= 0) return 0.0;
  auto rank = static_cast<int64_t>(std::ceil(q * static_cast<double>(count)));
  if (rank < 1) rank = 1;
  if (rank > count) rank = count;
  int64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += counts[static_cast<std::size_t>(i)];
    if (seen >= rank) return bucket_mid(i);
  }
  return bucket_mid(kBuckets - 1);
}

void Histogram::record(double v) {
  Shard& shard = shards_[shard_for_thread()];
  const int bucket = HistogramSnapshot::bucket_index(v);
  shard.counts[static_cast<std::size_t>(bucket)].fetch_add(1, std::memory_order_relaxed);
  atomic_add_double(shard.sum, v);
  atomic_max_double(shard.max, v);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  for (const Shard& shard : shards_) {
    for (int i = 0; i < HistogramSnapshot::kBuckets; ++i) {
      const int64_t c = shard.counts[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
      s.counts[static_cast<std::size_t>(i)] += c;
      s.count += c;
    }
    s.sum += shard.sum.load(std::memory_order_relaxed);
    const double m = shard.max.load(std::memory_order_relaxed);
    if (m > s.max) s.max = m;
  }
  return s;
}

void Histogram::reset() {
  for (Shard& shard : shards_) {
    for (auto& c : shard.counts) c.store(0, std::memory_order_relaxed);
    shard.sum.store(0.0, std::memory_order_relaxed);
    shard.max.store(0.0, std::memory_order_relaxed);
  }
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::string MetricsRegistry::dump_text() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  for (const auto& [name, c] : counters_) {
    os << "counter " << name << " " << c->value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    os << "gauge " << name << " " << g->value() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const HistogramSnapshot s = h->snapshot();
    os << "histogram " << name << " count=" << s.count << " mean=" << s.mean()
       << " p50=" << s.percentile(0.50) << " p95=" << s.percentile(0.95)
       << " p99=" << s.percentile(0.99) << " max=" << s.max << "\n";
  }
  return os.str();
}

void MetricsRegistry::dump_json(JsonWriter& json) const {
  const std::lock_guard<std::mutex> lock(mu_);
  json.begin_object();
  json.key("counters").begin_object();
  for (const auto& [name, c] : counters_) json.kv(name, c->value());
  json.end_object();
  json.key("gauges").begin_object();
  for (const auto& [name, g] : gauges_) json.kv(name, g->value());
  json.end_object();
  json.key("histograms").begin_object();
  for (const auto& [name, h] : histograms_) {
    const HistogramSnapshot s = h->snapshot();
    json.key(name).begin_object();
    json.kv("count", s.count);
    json.kv("mean", s.mean());
    json.kv("p50", s.percentile(0.50));
    json.kv("p95", s.percentile(0.95));
    json.kv("p99", s.percentile(0.99));
    json.kv("max", s.max);
    json.end_object();
  }
  json.end_object();
  json.end_object();
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) c->reset();
  for (const auto& [name, g] : gauges_) g->reset();
  for (const auto& [name, h] : histograms_) h->reset();
}

}  // namespace ndsnn::util
