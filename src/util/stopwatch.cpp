#include "util/stopwatch.hpp"

namespace ndsnn::util {

void Stopwatch::reset() { start_ = std::chrono::steady_clock::now(); }

double Stopwatch::seconds() const {
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(now - start_).count();
}

}  // namespace ndsnn::util
