#include "util/cli.hpp"

#include <cstdlib>

namespace ndsnn::util {

Cli::Cli(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
  for (std::size_t i = 0; i < args_.size(); ++i) {
    if (args_[i].rfind("--", 0) == 0) {
      // A flag; if followed by a non-flag token, that token is its value.
      if (i + 1 < args_.size() && args_[i + 1].rfind("--", 0) != 0) ++i;
    } else {
      positional_.push_back(args_[i]);
    }
  }
}

bool Cli::has_flag(std::string_view name) const {
  for (const auto& a : args_) {
    if (a == name) return true;
  }
  return false;
}

std::string Cli::get_string(std::string_view name, std::string fallback) const {
  for (std::size_t i = 0; i + 1 < args_.size(); ++i) {
    if (args_[i] == name) return args_[i + 1];
  }
  return fallback;
}

int Cli::get_int(std::string_view name, int fallback) const {
  for (std::size_t i = 0; i + 1 < args_.size(); ++i) {
    if (args_[i] == name) return std::atoi(args_[i + 1].c_str());
  }
  return fallback;
}

double Cli::get_double(std::string_view name, double fallback) const {
  for (std::size_t i = 0; i + 1 < args_.size(); ++i) {
    if (args_[i] == name) return std::atof(args_[i + 1].c_str());
  }
  return fallback;
}

}  // namespace ndsnn::util
