// Paper-style ASCII table printer used by the benchmark harnesses.
//
// Benches print rows that mirror the tables/figures in the paper, e.g.
//
//   | Method     | 90%   | 95%   | 98%   | 99%   |
//   |------------|-------|-------|-------|-------|
//   | NDSNN      | 91.84 | 91.31 | 89.62 | 88.13 |
#pragma once

#include <string>
#include <vector>

namespace ndsnn::util {

/// Accumulates rows of strings and renders a Markdown-style table with
/// per-column width alignment.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append one row; must have the same arity as the header.
  /// Throws std::invalid_argument otherwise.
  void add_row(std::vector<std::string> row);

  /// Render the full table (header, separator, rows).
  [[nodiscard]] std::string str() const;

  /// Render to stdout.
  void print() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t cols() const { return header_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed decimals (default 2), as the paper prints
/// accuracies ("91.84").
[[nodiscard]] std::string fmt(double value, int decimals = 2);

}  // namespace ndsnn::util
