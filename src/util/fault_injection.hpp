// Deterministic process-wide fault injection for chaos testing.
//
// Production code marks *sites* — named points where a failure of the
// outside world can be simulated — with a single call:
//
//   if (util::fault::should_fail("wire.reset"))
//     throw WireError("wire: injected connection reset");
//
// With nothing armed the check is one relaxed atomic load of a flag
// that never changes, so fault sites can live on hot paths (the serving
// read/write loops) at effectively zero cost.
//
// Faults are armed either programmatically (FaultInjector::arm) or from
// the NDSNN_FAULTS environment variable, read once at first use:
//
//   NDSNN_FAULTS="seed=7;wire.short_read=0.2;wire.reset=0.01x3+5"
//
// Grammar, per ';'- or ','-separated clause:
//   seed=N                     decision-stream seed (default 1)
//   <site>=<prob>              fire with probability <prob> per check
//   <site>=<prob>xMAX          ...at most MAX times, then disarm
//   <site>=<prob>+SKIP         ...never within the first SKIP checks
//   <site>=<prob>xMAX+SKIP     both (order fixed: xMAX before +SKIP)
//
// Determinism: whether check #k of a site fires is a pure function of
// (seed, site name, k) — a splitmix64-style hash mapped to [0,1) and
// compared against the probability. Re-running a process with the same
// seed, sites and call sequence reproduces the exact fault schedule;
// the chaos tests print the seed of a failing run so it can be replayed
// (see CONTRIBUTING "Reproducing a chaos-test failure").
//
// Thread safety: should_fire/arm/disarm/reset may race freely; per-site
// check indices are assigned under the registry mutex, so two threads
// hitting one site concurrently consume distinct decision indices
// (which thread gets which index is the one scheduling-dependent part).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace ndsnn::util::fault {

/// How one armed site fires. Defaults: always, forever, immediately.
struct Rule {
  double probability = 1.0;  ///< chance each check fires, in [0, 1]
  int64_t max_fires = -1;    ///< disarm after this many fires (-1 = never)
  int64_t skip = 0;          ///< first `skip` checks never fire
};

class FaultInjector {
 public:
  /// The process-wide instance. The first call parses NDSNN_FAULTS
  /// from the environment (absent/empty = nothing armed).
  static FaultInjector& global();

  /// True when any site is armed anywhere in the process. One relaxed
  /// atomic load; the fast path of should_fail().
  [[nodiscard]] static bool active() {
    return armed_sites_.load(std::memory_order_relaxed) > 0;
  }

  /// Parse and arm a spec string (the NDSNN_FAULTS grammar above).
  /// Clauses accumulate onto whatever is already armed; a repeated site
  /// replaces its rule. Throws std::invalid_argument on a malformed
  /// clause, leaving previously-armed clauses in place.
  void configure(const std::string& spec);

  /// Arm one site. Replaces any existing rule for it; resets the site's
  /// check/fire counters.
  void arm(const std::string& site, Rule rule);

  /// Disarm one site (keeps its counters readable until reset()).
  void disarm(const std::string& site);

  /// Disarm everything and forget all counters. Tests call this in
  /// TearDown so a fault schedule can never leak across test cases.
  void reset();

  /// Seed of the decision stream. Changing it does not reset counters.
  void set_seed(uint64_t seed);
  [[nodiscard]] uint64_t seed() const;

  /// The per-site decision: consumes one check index and reports
  /// whether this check fires. Use through should_fail() so disarmed
  /// processes skip the registry entirely.
  [[nodiscard]] bool should_fire(const char* site);

  /// Checks observed / faults fired at a site since it was armed (0 for
  /// unknown sites). For test assertions and the summary line.
  [[nodiscard]] int64_t checks(const std::string& site) const;
  [[nodiscard]] int64_t fires(const std::string& site) const;

  /// One line per armed site: "site p=0.2 fired 3/17" — printed by
  /// serve_sparse at startup/shutdown so any faulty run documents its
  /// own schedule.
  [[nodiscard]] std::string summary() const;

 private:
  FaultInjector() = default;

  struct Site {
    Rule rule;
    bool armed = false;
    int64_t checks = 0;
    int64_t fires = 0;
  };

  mutable std::mutex mu_;
  std::map<std::string, Site> sites_;
  uint64_t seed_ = 1;
  /// Count of armed sites across the process; the should_fail fast path.
  static std::atomic<int64_t> armed_sites_;
};

/// The one-liner production code uses at a fault site: false forever on
/// a process with nothing armed, at the cost of a relaxed atomic load.
[[nodiscard]] inline bool should_fail(const char* site) {
  return FaultInjector::active() && FaultInjector::global().should_fire(site);
}

}  // namespace ndsnn::util::fault
