// Wall-clock stopwatch used by trainers and benches.
#pragma once

#include <chrono>

namespace ndsnn::util {

/// Monotonic stopwatch. Starts running on construction.
class Stopwatch {
 public:
  Stopwatch() { reset(); }

  /// Restart timing from now.
  void reset();

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const;

  /// Milliseconds elapsed since construction or the last reset().
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace ndsnn::util
