// Minimal leveled logging for the NDSNN library.
//
// The library itself never logs below `warn`; trainers and benches use
// `info`/`debug` for progress reporting. Output goes to stderr so bench
// tables on stdout stay machine-parsable.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace ndsnn::util {

/// Severity of a log record, ordered by increasing importance.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; records below it are discarded.
/// Defaults to kInfo; tests lower it to silence progress chatter.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one record. Thread-compatible (callers serialize externally).
void log(LogLevel level, std::string_view message);

namespace detail {
/// Stream-style builder: destructor emits the accumulated message.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LogLine log_debug() { return detail::LogLine(LogLevel::kDebug); }
inline detail::LogLine log_info() { return detail::LogLine(LogLevel::kInfo); }
inline detail::LogLine log_warn() { return detail::LogLine(LogLevel::kWarn); }
inline detail::LogLine log_error() { return detail::LogLine(LogLevel::kError); }

}  // namespace ndsnn::util
