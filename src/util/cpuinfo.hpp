// Runtime CPU-feature detection and the kernel-tier dispatch contract.
//
// Every hot kernel in src/sparse/ and src/tensor/ exists at up to three
// tiers:
//
//   kScalar — portable C++ loops (whatever the compiler autovectorizes;
//             the bitwise reference semantics).
//   kVector — the gcc-vector-extension strip-mined paths (Bcsr::spmm's
//             vfs workers). Kernels without a dedicated vector body run
//             their scalar body at this tier; the two tiers are then
//             the same code.
//   kAvx2   — hand-written AVX2(+FMA) intrinsic bodies, compiled with
//             `__attribute__((target("avx2,fma")))` so the binary still
//             runs on pre-AVX2 x86 (the tier is simply never selected
//             there).
//
// Dispatch is data-independent: a kernel call resolves its tier once
// (request -> active() -> clamped to detected()) and the chosen body
// computes the identical per-output accumulation order, so fp32 results
// are bitwise identical across tiers (pinned by
// tests/sparse/simd_tier_test.cpp and the differential harness's tier
// axis). Quantised bodies carry only the QuantPlane error contract and
// are free to reassociate per tier.
//
// Selection precedence (strongest first):
//   1. force() — tests and the bench's tier sweeps.
//   2. NDSNN_KERNEL_TIER=scalar|vector|avx2 env var, read once.
//   3. detected() — cpuid probe (AVX2 && FMA -> kAvx2, else kVector).
// Requests above detected() clamp down (forcing "avx2" on a non-AVX2
// box runs kVector instead of SIGILLing); kAuto means "no opinion".
#pragma once

#include <string_view>

namespace ndsnn::util::simd {

/// Kernel tier. kAuto is a request value only ("use active()");
/// detected()/active()/resolve() never return it.
enum class Tier { kAuto = 0, kScalar = 1, kVector = 2, kAvx2 = 3 };

/// Best tier this CPU can execute (cached cpuid probe; never kAuto).
Tier detected();

/// Tier a kAuto request resolves to right now: force() override if set,
/// else the NDSNN_KERNEL_TIER env var, else detected(). Always clamped
/// to detected().
Tier active();

/// Resolve an explicit request: kAuto -> active(), anything else is
/// clamped to detected() so an impossible request degrades instead of
/// faulting.
Tier resolve(Tier request);

/// Process-wide override for tests and tier-sweep benches. kAuto clears
/// the override. Not meant to race with in-flight kernels (callers
/// force around a measured region); the store itself is atomic.
void force(Tier tier);

/// "auto" | "scalar" | "vector" | "avx2".
const char* name(Tier tier);

/// Parse a tier name (as accepted by NDSNN_KERNEL_TIER and the
/// serve_sparse --kernel-tier flag). Returns false on unknown input.
bool parse(std::string_view text, Tier* out);

}  // namespace ndsnn::util::simd
