#include "util/thread_pool.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/metrics.hpp"

namespace ndsnn::util {

namespace {

/// Dispatch counters in the process metrics registry: how often kernels
/// actually fork-join vs fall through serially (work below
/// kMinParallelWork), and how many chunks the forks fanned out. Cached
/// references — registry lookups lock, the counters themselves are one
/// relaxed atomic add.
struct PoolMetrics {
  Counter& fork_joins;
  Counter& chunks;
  Counter& serial_inline;

  static PoolMetrics& get() {
    auto& reg = MetricsRegistry::global();
    static PoolMetrics m{reg.counter("pool.fork_joins"), reg.counter("pool.chunks"),
                         reg.counter("pool.serial_inline")};
    return m;
  }
};

}  // namespace

ThreadPool::ThreadPool(int64_t lanes) : lanes_(lanes) {
  if (lanes < 1) {
    throw std::invalid_argument("ThreadPool: lanes must be >= 1");
  }
  workers_.reserve(static_cast<std::size_t>(lanes - 1));
  for (int64_t i = 0; i < lanes - 1; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

int64_t ThreadPool::resolve_lanes(int64_t requested) {
  if (requested > 0) return requested;
  const auto hw = static_cast<int64_t>(std::thread::hardware_concurrency());
  return hw > 0 ? hw : 1;
}

int64_t ThreadPool::chunks_for(int64_t work, int64_t max_chunks) const {
  const int64_t by_work = work / kMinParallelWork;
  return std::max<int64_t>(1, std::min({lanes_, by_work, max_chunks}));
}

int64_t chunks_for(const ThreadPool* pool, int64_t work, int64_t max_chunks) {
  return pool == nullptr ? 1 : pool->chunks_for(work, max_chunks);
}

void ThreadPool::run_chunk(Job& job, int64_t c) {
  try {
    (*job.fn)(c);
  } catch (...) {
    const std::lock_guard<std::mutex> lock(job.mu);
    if (!job.error) job.error = std::current_exception();
  }
  {
    const std::lock_guard<std::mutex> lock(job.mu);
    if (++job.done == job.chunks) job.cv.notify_all();
  }
}

void ThreadPool::parallel_chunks(int64_t chunks, const std::function<void(int64_t)>& fn) {
  if (chunks <= 0) return;
  if (chunks == 1 || lanes_ <= 1) {
    PoolMetrics::get().serial_inline.add();
    for (int64_t c = 0; c < chunks; ++c) fn(c);
    return;
  }
  PoolMetrics& metrics = PoolMetrics::get();
  metrics.fork_joins.add();
  metrics.chunks.add(chunks);
  auto job = std::make_shared<Job>();
  job->fn = &fn;  // the caller blocks below, so the reference outlives the job
  job->chunks = chunks;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    jobs_.push_back(job);
  }
  cv_.notify_all();
  // The caller is a lane too: steal chunks until the cursor runs out,
  // then wait for the stragglers the workers still hold.
  for (;;) {
    const int64_t c = job->next.fetch_add(1, std::memory_order_relaxed);
    if (c >= chunks) break;
    run_chunk(*job, c);
  }
  {
    std::unique_lock<std::mutex> lock(job->mu);
    job->cv.wait(lock, [&] { return job->done == job->chunks; });
  }
  if (job->error) std::rethrow_exception(job->error);
}

void ThreadPool::parallel_for(int64_t begin, int64_t end, int64_t chunks,
                              const std::function<void(int64_t, int64_t)>& fn) {
  const std::vector<int64_t> bounds = even_bounds(begin, end, chunks);
  parallel_chunks(static_cast<int64_t>(bounds.size()) - 1,
                  [&](int64_t c) { fn(bounds[static_cast<std::size_t>(c)],
                                      bounds[static_cast<std::size_t>(c) + 1]); });
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [this] { return stop_ || !jobs_.empty(); });
    if (jobs_.empty()) return;  // stop_ and nothing in flight
    auto job = jobs_.front();
    const int64_t c = job->next.fetch_add(1, std::memory_order_relaxed);
    if (c >= job->chunks) {
      // Exhausted: retire it from the queue (the caller may still be
      // waiting on completion, which run_chunk signals independently).
      if (!jobs_.empty() && jobs_.front() == job) jobs_.pop_front();
      continue;
    }
    lock.unlock();
    run_chunk(*job, c);
    lock.lock();
  }
}

std::vector<int64_t> balanced_bounds(const int64_t* prefix, int64_t rows, int64_t chunks) {
  if (chunks > rows) chunks = rows;
  if (chunks < 1) chunks = 1;
  std::vector<int64_t> bounds;
  bounds.reserve(static_cast<std::size_t>(chunks) + 1);
  bounds.push_back(0);
  const int64_t base = prefix[0];
  const int64_t total = prefix[rows] - base;
  int64_t cut = 0;
  for (int64_t c = 1; c < chunks; ++c) {
    // Cut at the first row whose cumulative weight reaches the c-th
    // ideal target, leaving at least one row per remaining chunk.
    const int64_t target = base + (total * c) / chunks;
    const int64_t max_cut = rows - (chunks - c);
    cut = std::max(cut, bounds.back() + 1);
    while (cut < max_cut && prefix[cut] < target) ++cut;
    bounds.push_back(cut);
  }
  bounds.push_back(rows);
  return bounds;
}

void parallel_balanced(ThreadPool* pool, const int64_t* prefix, int64_t rows, int64_t work,
                       const std::function<void(int64_t, int64_t)>& fn) {
  const int64_t chunks = chunks_for(pool, work, rows);
  if (chunks <= 1) {
    fn(0, rows);
    return;
  }
  const std::vector<int64_t> bounds = balanced_bounds(prefix, rows, chunks);
  pool->parallel_chunks(static_cast<int64_t>(bounds.size()) - 1, [&](int64_t c) {
    fn(bounds[static_cast<std::size_t>(c)], bounds[static_cast<std::size_t>(c) + 1]);
  });
}

void parallel_even(ThreadPool* pool, int64_t begin, int64_t end, int64_t work,
                   const std::function<void(int64_t, int64_t)>& fn) {
  const int64_t chunks = chunks_for(pool, work, end - begin);
  if (chunks <= 1) {
    fn(begin, end);
    return;
  }
  pool->parallel_for(begin, end, chunks, fn);
}

std::vector<int64_t> even_bounds(int64_t begin, int64_t end, int64_t chunks) {
  const int64_t extent = end - begin;
  if (chunks > extent) chunks = extent;
  if (chunks < 1) chunks = 1;
  std::vector<int64_t> bounds;
  bounds.reserve(static_cast<std::size_t>(chunks) + 1);
  for (int64_t c = 0; c <= chunks; ++c) {
    bounds.push_back(begin + (extent * c) / chunks);
  }
  return bounds;
}

}  // namespace ndsnn::util
