// Shared execution thread pool for intra-op parallelism.
//
// One fixed set of worker threads serves every parallel kernel of a
// compiled plan (runtime::Plan owns the pool; ops borrow it), so a hot
// loop pays a queue handoff instead of a per-call thread spawn.
// parallel_chunks() is a blocking fork-join over precomputed index
// ranges: the calling thread claims chunks alongside the workers (a
// pool of `lanes` applies `lanes` execution lanes with lanes-1 helper
// threads), and concurrent calls from different threads — the
// BatchExecutor's request workers sharing one plan pool — interleave in
// the queue and steal chunks from whichever call is in flight.
//
// Determinism: the pool changes *who* computes, never *what*. Every
// kernel that dispatches through it partitions by output row / block
// row / output channel, so each output element is produced by exactly
// one chunk running the identical serial accumulation order; fp32
// results are bitwise independent of the lane count (pinned by
// tests/runtime/parallel_runtime_test.cpp across the differential
// harness configs).
//
// Telemetry: dispatches increment the process metrics registry
// (pool.fork_joins / pool.chunks / pool.serial_inline — relaxed
// counters, one atomic add per call), so a metrics dump shows how
// often the kernels actually went parallel vs fell below
// kMinParallelWork.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace ndsnn::util {

/// Inner-loop work (FMA-scale iterations) below which a kernel should
/// stay serial: the fork-join handoff (~5-20us of wakeup + completion
/// wait) costs more than the loop itself. Calibrated on the lenet5 fc
/// layers: fc2 [84 x 120] at 0.9 sparsity over a T*N=16 batch is ~16k
/// terms and stays serial, fc1 [120 x 400] is ~77k and dispatches.
constexpr int64_t kMinParallelWork = int64_t{1} << 15;

class ThreadPool {
 public:
  /// A pool of `lanes` execution lanes: the calling thread plus
  /// lanes - 1 workers. lanes must be >= 1 (1 = no workers, every
  /// parallel_chunks call degenerates to an inline serial loop).
  explicit ThreadPool(int64_t lanes);

  /// Joins the workers. Must not run concurrently with parallel_chunks.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// CompileOptions::num_threads semantics: 0 resolves to
  /// std::thread::hardware_concurrency() (at least 1), anything else is
  /// taken literally.
  [[nodiscard]] static int64_t resolve_lanes(int64_t requested);

  [[nodiscard]] int64_t lanes() const { return lanes_; }

  /// How many chunks a kernel with `work` total inner iterations should
  /// split into: one chunk per kMinParallelWork of work, capped by the
  /// lane count and by `max_chunks` (the partitionable extent, e.g. the
  /// output row count). Returns 1 — stay serial — for small work.
  [[nodiscard]] int64_t chunks_for(int64_t work, int64_t max_chunks) const;

  /// Blocking fork-join: invoke fn(c) for every c in [0, chunks), in
  /// parallel across the pool, caller participating. Returns when all
  /// chunks completed; the first chunk exception (if any) is rethrown
  /// here. fn must not call back into the pool (no nesting).
  void parallel_chunks(int64_t chunks, const std::function<void(int64_t)>& fn);

  /// Convenience fork-join over an even split of [begin, end) into
  /// `chunks` ranges: fn(lo, hi) per chunk.
  void parallel_for(int64_t begin, int64_t end, int64_t chunks,
                    const std::function<void(int64_t, int64_t)>& fn);

 private:
  /// One fork-join call in flight. Chunks are claimed with an atomic
  /// cursor (workers and the caller steal from the same counter);
  /// completion is a mutex-guarded count so the caller's wait cannot
  /// miss the last wakeup.
  struct Job {
    const std::function<void(int64_t)>* fn = nullptr;
    int64_t chunks = 0;
    std::atomic<int64_t> next{0};
    std::mutex mu;
    std::condition_variable cv;
    int64_t done = 0;               ///< guarded by mu
    std::exception_ptr error;       ///< first chunk failure, guarded by mu
  };

  void worker_loop();
  static void run_chunk(Job& job, int64_t c);

  int64_t lanes_ = 1;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<Job>> jobs_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// chunks_for over a possibly-absent pool: a null pool is serial.
[[nodiscard]] int64_t chunks_for(const ThreadPool* pool, int64_t work, int64_t max_chunks);

/// Split rows [0, rows) into at most `chunks` contiguous ranges of
/// near-equal *weight*, where `prefix` is a prefix-sum array of length
/// rows + 1 (weight of row r = prefix[r+1] - prefix[r]; a Csr row_ptr
/// or Bcsr block_row_ptr is exactly this). Greedy walk against the
/// ideal cumulative targets; never emits an empty range. Returns the
/// bounds vector {0, b1, ..., rows} (size = actual chunks + 1).
[[nodiscard]] std::vector<int64_t> balanced_bounds(const int64_t* prefix, int64_t rows,
                                                   int64_t chunks);

/// Even split of [begin, end) into at most `chunks` non-empty ranges.
[[nodiscard]] std::vector<int64_t> even_bounds(int64_t begin, int64_t end, int64_t chunks);

/// The kernels' one dispatch pattern: split rows [0, rows) into
/// chunks_for(work, rows) weight-balanced ranges (prefix as in
/// balanced_bounds) and fork-join fn(lo, hi) across the pool; a null
/// pool or sub-threshold work runs fn(0, rows) inline on the caller.
void parallel_balanced(ThreadPool* pool, const int64_t* prefix, int64_t rows, int64_t work,
                       const std::function<void(int64_t, int64_t)>& fn);

/// Unweighted sibling of parallel_balanced: even ranges over
/// [begin, end), serial inline (fn(begin, end)) on a null pool or
/// sub-threshold work.
void parallel_even(ThreadPool* pool, int64_t begin, int64_t end, int64_t work,
                   const std::function<void(int64_t, int64_t)>& fn);

}  // namespace ndsnn::util
