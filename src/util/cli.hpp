// Tiny command-line flag parser for examples and benches.
//
//   ndsnn::util::Cli cli(argc, argv);
//   const int epochs = cli.get_int("--epochs", 20);
//   const bool fast = cli.has_flag("--fast");
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ndsnn::util {

/// Parses `--key value` pairs and bare `--flag`s. Unknown arguments are
/// kept and can be inspected via positional().
class Cli {
 public:
  Cli(int argc, const char* const* argv);

  /// True when `--name` appears anywhere on the command line.
  [[nodiscard]] bool has_flag(std::string_view name) const;

  /// Value following `--name`, or `fallback` when absent.
  [[nodiscard]] std::string get_string(std::string_view name, std::string fallback) const;
  [[nodiscard]] int get_int(std::string_view name, int fallback) const;
  [[nodiscard]] double get_double(std::string_view name, double fallback) const;

  /// Arguments that are not flags and not flag values.
  [[nodiscard]] const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::vector<std::string> args_;
  std::vector<std::string> positional_;
};

}  // namespace ndsnn::util
