#include "util/logging.hpp"

#include <atomic>
#include <cstdio>

namespace ndsnn::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};

constexpr const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log(LogLevel level, std::string_view message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  std::fprintf(stderr, "[%s] %.*s\n", level_tag(level),
               static_cast<int>(message.size()), message.data());
}

}  // namespace ndsnn::util
