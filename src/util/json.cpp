#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace ndsnn::util {

namespace {

void append_escaped(std::string& out, std::string_view v) {
  out += '"';
  for (const char c : v) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

void JsonWriter::comma_() {
  if (after_key_) {
    // The value right after a key: the key already placed the comma.
    after_key_ = false;
    return;
  }
  if (!need_comma_.empty()) {
    if (need_comma_.back()) out_ += ',';
    need_comma_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma_();
  out_ += '{';
  need_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  need_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma_();
  out_ += '[';
  need_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  need_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  comma_();
  append_escaped(out_, k);
  out_ += ':';
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma_();
  if (!std::isfinite(v)) {
    out_ += "null";
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(int64_t v) {
  comma_();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma_();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  comma_();
  append_escaped(out_, v);
  return *this;
}

void JsonWriter::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("JsonWriter::write_file: cannot open " + path);
  out << out_ << '\n';
}

}  // namespace ndsnn::util
