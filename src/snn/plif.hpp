// Parametric LIF (PLIF): LIF with a *trainable* membrane leak, from
// Fang et al., "Incorporating Learnable Membrane Time Constant..."
// (the lineage of the paper's ref [18]).
//
// The leak is parameterized as alpha = sigmoid(a) so it stays in (0, 1)
// under unconstrained SGD. BPTT additionally accumulates
//     dL/da = sum_t eps[t] * v[t-1] * sigmoid'(a)
// i.e. the gradient of the membrane recursion w.r.t. the leak.
#pragma once

#include "snn/surrogate.hpp"
#include "tensor/tensor.hpp"

namespace ndsnn::snn {

struct PlifConfig {
  float initial_alpha = 0.5F;   ///< starting leak (mapped through logit)
  float threshold = 1.0F;
  bool detach_reset = true;
  SurrogateKind surrogate = SurrogateKind::kAtan;

  void validate() const;
};

/// PLIF layer over time-major activations [T*N, d...]; one shared leak
/// parameter per layer (the common choice; per-channel is future work).
class PlifLayer {
 public:
  PlifLayer(PlifConfig config, int64_t timesteps);

  [[nodiscard]] tensor::Tensor forward(const tensor::Tensor& current);
  /// Returns dL/dI and accumulates the leak gradient (see leak_grad()).
  [[nodiscard]] tensor::Tensor backward(const tensor::Tensor& grad_spikes);

  void reset_state();

  /// Current effective leak alpha = sigmoid(a).
  [[nodiscard]] float alpha() const;
  /// Raw parameter a and its accumulated gradient (for the optimizer).
  [[nodiscard]] float& raw_leak() { return raw_leak_; }
  [[nodiscard]] float& raw_leak_grad() { return raw_leak_grad_; }

  [[nodiscard]] const PlifConfig& config() const { return config_; }
  [[nodiscard]] int64_t timesteps() const { return timesteps_; }
  [[nodiscard]] double last_spike_rate() const { return last_spike_rate_; }

 private:
  PlifConfig config_;
  int64_t timesteps_;
  float raw_leak_ = 0.0F;       // a with alpha = sigmoid(a)
  float raw_leak_grad_ = 0.0F;
  tensor::Tensor saved_vmt_;    // v[t] - theta
  tensor::Tensor saved_vprev_;  // v[t-1] (zero for t = 0)
  int64_t step_size_ = 0;
  bool has_saved_ = false;
  double last_spike_rate_ = 0.0;
};

}  // namespace ndsnn::snn
