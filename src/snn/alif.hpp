// Adaptive LIF (ALIF): LIF with spike-frequency adaptation via a moving
// threshold (Bellec et al., "Long short-term memory in networks of
// spiking neurons"). Each spike raises the effective threshold:
//
//     a[t]     = rho * a[t-1] + o[t-1]
//     theta[t] = theta0 + beta * a[t]
//     v[t]     = alpha * v[t-1] + I[t] - theta[t] * o[t-1]
//     o[t]     = u(v[t] - theta[t])
//
// BPTT treats the adaptation trace as detached (standard practice: the
// threshold path's gradient is small and noisy); the membrane recursion
// gradient is exact, with phi evaluated at v[t] - theta[t].
#pragma once

#include "snn/surrogate.hpp"
#include "tensor/tensor.hpp"

namespace ndsnn::snn {

struct AlifConfig {
  float alpha = 0.5F;       ///< membrane leak
  float threshold = 1.0F;   ///< baseline threshold theta0
  float beta = 0.2F;        ///< adaptation strength
  float rho = 0.9F;         ///< adaptation trace decay
  SurrogateKind surrogate = SurrogateKind::kAtan;

  void validate() const;
};

class AlifLayer {
 public:
  AlifLayer(AlifConfig config, int64_t timesteps);

  [[nodiscard]] tensor::Tensor forward(const tensor::Tensor& current);
  [[nodiscard]] tensor::Tensor backward(const tensor::Tensor& grad_spikes);
  void reset_state();

  [[nodiscard]] const AlifConfig& config() const { return config_; }
  [[nodiscard]] int64_t timesteps() const { return timesteps_; }
  [[nodiscard]] double last_spike_rate() const { return last_spike_rate_; }

 private:
  AlifConfig config_;
  int64_t timesteps_;
  tensor::Tensor saved_vmt_;  // v[t] - theta[t]
  int64_t step_size_ = 0;
  bool has_saved_ = false;
  double last_spike_rate_ = 0.0;
};

}  // namespace ndsnn::snn
