#include "snn/encoder.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ndsnn::snn {

namespace {
tensor::Shape time_major_shape(const tensor::Tensor& batch, int64_t timesteps) {
  if (timesteps < 1) throw std::invalid_argument("encode: timesteps must be >= 1");
  std::vector<int64_t> dims = batch.shape().dims();
  if (dims.empty()) throw std::invalid_argument("encode: input must have a batch dim");
  dims[0] *= timesteps;
  return tensor::Shape(dims);
}
}  // namespace

tensor::Tensor DirectEncoder::encode(const tensor::Tensor& batch, int64_t timesteps) {
  tensor::Tensor out(time_major_shape(batch, timesteps));
  const int64_t step = batch.numel();
  for (int64_t t = 0; t < timesteps; ++t) {
    std::copy(batch.data(), batch.data() + step, out.data() + t * step);
  }
  return out;
}

tensor::Tensor PoissonEncoder::encode(const tensor::Tensor& batch, int64_t timesteps) {
  tensor::Tensor out(time_major_shape(batch, timesteps));
  const int64_t step = batch.numel();
  const float* src = batch.data();
  for (int64_t t = 0; t < timesteps; ++t) {
    float* dst = out.data() + t * step;
    for (int64_t i = 0; i < step; ++i) {
      const float p = std::clamp(src[i], 0.0F, 1.0F);
      dst[i] = rng_.bernoulli(p) ? 1.0F : 0.0F;
    }
  }
  return out;
}

tensor::Tensor LatencyEncoder::encode(const tensor::Tensor& batch, int64_t timesteps) {
  tensor::Tensor out(time_major_shape(batch, timesteps));
  const int64_t step = batch.numel();
  const float* src = batch.data();
  for (int64_t i = 0; i < step; ++i) {
    const float x = std::clamp(src[i], 0.0F, 1.0F);
    if (x <= 0.0F) continue;
    const auto fire_t = static_cast<int64_t>(
        std::floor((1.0F - x) * static_cast<float>(timesteps - 1)));
    out.data()[fire_t * step + i] = 1.0F;
  }
  return out;
}

}  // namespace ndsnn::snn
