#include "snn/plif.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace ndsnn::snn {

namespace {
float sigmoid(float x) { return 1.0F / (1.0F + std::exp(-x)); }
float logit(float p) { return std::log(p / (1.0F - p)); }
}  // namespace

void PlifConfig::validate() const {
  if (!(initial_alpha > 0.0F && initial_alpha < 1.0F)) {
    throw std::invalid_argument("PlifConfig: initial_alpha must be in (0, 1)");
  }
  if (threshold <= 0.0F) throw std::invalid_argument("PlifConfig: threshold must be > 0");
}

PlifLayer::PlifLayer(PlifConfig config, int64_t timesteps)
    : config_(config), timesteps_(timesteps) {
  config_.validate();
  if (timesteps_ < 1) throw std::invalid_argument("PlifLayer: timesteps must be >= 1");
  raw_leak_ = logit(config_.initial_alpha);
}

float PlifLayer::alpha() const { return sigmoid(raw_leak_); }

tensor::Tensor PlifLayer::forward(const tensor::Tensor& current) {
  const int64_t total = current.numel();
  if (total % timesteps_ != 0) {
    throw std::invalid_argument("PlifLayer::forward: numel not divisible by T");
  }
  step_size_ = total / timesteps_;
  saved_vmt_ = tensor::Tensor(current.shape());
  saved_vprev_ = tensor::Tensor(current.shape());
  tensor::Tensor spikes(current.shape());

  const float* in = current.data();
  float* vmt = saved_vmt_.data();
  float* vprev = saved_vprev_.data();
  float* spk = spikes.data();
  const float a = alpha();
  const float theta = config_.threshold;

  int64_t fired = 0;
  for (int64_t t = 0; t < timesteps_; ++t) {
    const float* it = in + t * step_size_;
    float* vt = vmt + t * step_size_;
    float* vp = vprev + t * step_size_;
    float* ot = spk + t * step_size_;
    for (int64_t i = 0; i < step_size_; ++i) {
      const float prev_v = t == 0 ? 0.0F : vmt[(t - 1) * step_size_ + i] + theta;
      const float prev_o = t == 0 ? 0.0F : spk[(t - 1) * step_size_ + i];
      vp[i] = prev_v;
      const float v = a * prev_v + it[i] - theta * prev_o;
      vt[i] = v - theta;
      ot[i] = heaviside(v - theta);
      fired += ot[i] != 0.0F;
    }
  }
  last_spike_rate_ = static_cast<double>(fired) / static_cast<double>(total);
  has_saved_ = true;
  // Keep spikes for the reset path in backward.
  // (saved via closure over spikes tensor is impossible; store in vprev's
  // place is wrong -- so recompute from vmt sign in backward instead.)
  return spikes;
}

tensor::Tensor PlifLayer::backward(const tensor::Tensor& grad_spikes) {
  if (!has_saved_) throw std::logic_error("PlifLayer::backward before forward");
  if (grad_spikes.shape() != saved_vmt_.shape()) {
    throw std::invalid_argument("PlifLayer::backward: grad shape mismatch");
  }
  tensor::Tensor grad_current(grad_spikes.shape());
  const float* gout = grad_spikes.data();
  const float* vmt = saved_vmt_.data();
  const float* vprev = saved_vprev_.data();
  float* gin = grad_current.data();
  const float a = alpha();
  const float theta = config_.threshold;
  const bool with_reset = !config_.detach_reset;
  const float dsig = a * (1.0F - a);  // d alpha / d raw

  double leak_acc = 0.0;
  std::vector<float> eps_next(static_cast<std::size_t>(step_size_), 0.0F);
  for (int64_t t = timesteps_ - 1; t >= 0; --t) {
    const float* dt = gout + t * step_size_;
    const float* vt = vmt + t * step_size_;
    const float* vp = vprev + t * step_size_;
    float* gt = gin + t * step_size_;
    for (int64_t i = 0; i < step_size_; ++i) {
      const float phi = surrogate_grad(config_.surrogate, vt[i]);
      float delta = dt[i];
      if (with_reset) delta -= theta * eps_next[static_cast<std::size_t>(i)];
      const float eps = delta * phi + a * eps_next[static_cast<std::size_t>(i)];
      gt[i] = eps;
      // dv[t]/dalpha = v[t-1]; chain through sigmoid.
      leak_acc += static_cast<double>(eps) * vp[i];
      eps_next[static_cast<std::size_t>(i)] = eps;
    }
  }
  raw_leak_grad_ += static_cast<float>(leak_acc) * dsig;
  return grad_current;
}

void PlifLayer::reset_state() {
  saved_vmt_ = tensor::Tensor();
  saved_vprev_ = tensor::Tensor();
  has_saved_ = false;
}

}  // namespace ndsnn::snn
