// Input encoders: turn a static image batch into a time-major sequence.
//
// Activations downstream are time-major [T*N, C, H, W]. Three encoders:
//  - DirectEncoder: replicate the analog frame at every step ("direct
//    encoding"; the first conv layer acts as a learned spike encoder --
//    this is the standard setup used by the paper's SpikingJelly models).
//  - PoissonEncoder: Bernoulli spikes with P(spike) = clamp(pixel, 0, 1)
//    per step (classic rate coding).
//  - LatencyEncoder: one spike per pixel, earlier for stronger intensity.
#pragma once

#include "tensor/random.hpp"
#include "tensor/tensor.hpp"

namespace ndsnn::snn {

/// Common interface: expand [N, d...] into [T*N, d...].
class Encoder {
 public:
  virtual ~Encoder() = default;
  [[nodiscard]] virtual tensor::Tensor encode(const tensor::Tensor& batch,
                                              int64_t timesteps) = 0;
  [[nodiscard]] virtual const char* name() const = 0;
};

/// Replicates the input at every timestep (values stay analog).
class DirectEncoder final : public Encoder {
 public:
  [[nodiscard]] tensor::Tensor encode(const tensor::Tensor& batch, int64_t timesteps) override;
  [[nodiscard]] const char* name() const override { return "direct"; }
};

/// Independent Bernoulli spikes per step, rate = clamped intensity.
class PoissonEncoder final : public Encoder {
 public:
  explicit PoissonEncoder(uint64_t seed) : rng_(seed) {}
  [[nodiscard]] tensor::Tensor encode(const tensor::Tensor& batch, int64_t timesteps) override;
  [[nodiscard]] const char* name() const override { return "poisson"; }

 private:
  tensor::Rng rng_;
};

/// Time-to-first-spike: pixel x in [0,1] fires once at step
/// floor((1-x) * (T-1)); zero-intensity pixels never fire.
class LatencyEncoder final : public Encoder {
 public:
  [[nodiscard]] tensor::Tensor encode(const tensor::Tensor& batch, int64_t timesteps) override;
  [[nodiscard]] const char* name() const override { return "latency"; }
};

}  // namespace ndsnn::snn
