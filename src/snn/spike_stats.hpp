// Spike-rate accounting used by the training-cost model (Fig. 5).
//
// The paper computes the relative training cost of a sparse model at epoch
// i as   [R_s^i * Sparsity_i] / R_d^i   where R is the average spike rate
// tracked over the whole epoch. SpikeStats accumulates per-layer firing
// fractions weighted by element count so R is the network-wide average.
#pragma once

#include <cstdint>
#include <vector>

namespace ndsnn::snn {

/// Accumulates spike counts across layers and batches within one epoch.
class SpikeStats {
 public:
  /// Record one layer's spike tensor summary: how many elements fired out
  /// of how many total.
  void record(int64_t fired, int64_t total);

  /// Convenience: record from a firing fraction and element count.
  void record_rate(double rate, int64_t total);

  /// Average firing probability over everything recorded so far.
  [[nodiscard]] double average_rate() const;

  [[nodiscard]] int64_t total_elements() const { return total_; }
  [[nodiscard]] int64_t total_fired() const { return fired_; }

  /// Clear for the next epoch.
  void reset();

 private:
  int64_t fired_ = 0;
  int64_t total_ = 0;
};

/// Per-epoch spike-rate trace of one training run; feeds core::CostModel.
class SpikeRateTrace {
 public:
  void push_epoch(double average_rate) { rates_.push_back(average_rate); }
  [[nodiscard]] const std::vector<double>& rates() const { return rates_; }
  [[nodiscard]] std::size_t epochs() const { return rates_.size(); }

 private:
  std::vector<double> rates_;
};

}  // namespace ndsnn::snn
