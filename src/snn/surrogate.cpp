#include "snn/surrogate.hpp"

#include <cmath>
#include <numbers>

namespace ndsnn::snn {

float heaviside(float x) { return x < 0.0F ? 0.0F : 1.0F; }

float surrogate_grad(SurrogateKind kind, float x) {
  constexpr float pi2 = static_cast<float>(std::numbers::pi * std::numbers::pi);
  switch (kind) {
    case SurrogateKind::kAtan:
      return 1.0F / (1.0F + pi2 * x * x);
    case SurrogateKind::kFastSigmoid: {
      const float d = 1.0F + std::fabs(x);
      return 1.0F / (d * d);
    }
    case SurrogateKind::kRectangle:
      return std::fabs(x) < 0.5F ? 1.0F : 0.0F;
    case SurrogateKind::kTriangle:
      return std::max(0.0F, 1.0F - std::fabs(x));
  }
  return 0.0F;
}

const char* surrogate_name(SurrogateKind kind) {
  switch (kind) {
    case SurrogateKind::kAtan: return "atan";
    case SurrogateKind::kFastSigmoid: return "fast_sigmoid";
    case SurrogateKind::kRectangle: return "rectangle";
    case SurrogateKind::kTriangle: return "triangle";
  }
  return "unknown";
}

}  // namespace ndsnn::snn
