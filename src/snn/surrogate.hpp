// Surrogate gradients for the Heaviside spike function.
//
// Forward: o = u(v - theta), the exact Heaviside step (Eq. 1b/1c).
// Backward: du/dx is replaced by a smooth pseudo-derivative phi(x) evaluated
// at x = v - theta. The paper (Eq. 3, following Fang et al. NeurIPS'21) uses
//
//     phi(x) = 1 / (1 + pi^2 x^2)
//
// which is the derivative of (1/pi) * atan(pi x) + 1/2 scaled to peak at 1.
// Alternatives are provided for the ablation benches.
#pragma once

#include <cstdint>

namespace ndsnn::snn {

/// Family of pseudo-derivatives phi(x); x is the membrane distance to
/// threshold (v - theta).
enum class SurrogateKind : uint8_t {
  kAtan,         // Eq. 3: 1 / (1 + pi^2 x^2)   (paper default)
  kFastSigmoid,  // 1 / (1 + |x|)^2
  kRectangle,    // 1[|x| < 0.5]
  kTriangle,     // max(0, 1 - |x|)
};

/// Heaviside step u(x): 0 for x < 0, else 1 (Eq. 1c).
[[nodiscard]] float heaviside(float x);

/// Pseudo-derivative phi(x) for the chosen family.
[[nodiscard]] float surrogate_grad(SurrogateKind kind, float x);

/// Human-readable name ("atan", "fast_sigmoid", ...).
[[nodiscard]] const char* surrogate_name(SurrogateKind kind);

}  // namespace ndsnn::snn
