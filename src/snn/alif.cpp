#include "snn/alif.hpp"

#include <stdexcept>
#include <vector>

namespace ndsnn::snn {

void AlifConfig::validate() const {
  if (!(alpha > 0.0F && alpha <= 1.0F)) {
    throw std::invalid_argument("AlifConfig: alpha must be in (0, 1]");
  }
  if (threshold <= 0.0F) throw std::invalid_argument("AlifConfig: threshold must be > 0");
  if (beta < 0.0F) throw std::invalid_argument("AlifConfig: beta must be >= 0");
  if (!(rho >= 0.0F && rho < 1.0F)) {
    throw std::invalid_argument("AlifConfig: rho must be in [0, 1)");
  }
}

AlifLayer::AlifLayer(AlifConfig config, int64_t timesteps)
    : config_(config), timesteps_(timesteps) {
  config_.validate();
  if (timesteps_ < 1) throw std::invalid_argument("AlifLayer: timesteps must be >= 1");
}

tensor::Tensor AlifLayer::forward(const tensor::Tensor& current) {
  const int64_t total = current.numel();
  if (total % timesteps_ != 0) {
    throw std::invalid_argument("AlifLayer::forward: numel not divisible by T");
  }
  step_size_ = total / timesteps_;
  saved_vmt_ = tensor::Tensor(current.shape());
  tensor::Tensor spikes(current.shape());

  const float* in = current.data();
  float* vmt = saved_vmt_.data();
  float* spk = spikes.data();

  std::vector<float> v(static_cast<std::size_t>(step_size_), 0.0F);
  std::vector<float> trace(static_cast<std::size_t>(step_size_), 0.0F);
  std::vector<float> prev_spike(static_cast<std::size_t>(step_size_), 0.0F);

  int64_t fired = 0;
  for (int64_t t = 0; t < timesteps_; ++t) {
    const float* it = in + t * step_size_;
    float* vt = vmt + t * step_size_;
    float* ot = spk + t * step_size_;
    for (int64_t i = 0; i < step_size_; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      trace[idx] = config_.rho * trace[idx] + prev_spike[idx];
      const float theta_t = config_.threshold + config_.beta * trace[idx];
      v[idx] = config_.alpha * v[idx] + it[i] - theta_t * prev_spike[idx];
      const float dist = v[idx] - theta_t;
      vt[i] = dist;
      ot[i] = heaviside(dist);
      prev_spike[idx] = ot[i];
      fired += ot[i] != 0.0F;
    }
  }
  last_spike_rate_ = static_cast<double>(fired) / static_cast<double>(total);
  has_saved_ = true;
  return spikes;
}

tensor::Tensor AlifLayer::backward(const tensor::Tensor& grad_spikes) {
  if (!has_saved_) throw std::logic_error("AlifLayer::backward before forward");
  if (grad_spikes.shape() != saved_vmt_.shape()) {
    throw std::invalid_argument("AlifLayer::backward: grad shape mismatch");
  }
  tensor::Tensor grad_current(grad_spikes.shape());
  const float* gout = grad_spikes.data();
  const float* vmt = saved_vmt_.data();
  float* gin = grad_current.data();
  const float alpha = config_.alpha;

  // Membrane recursion only (adaptation trace detached):
  //   eps[t] = delta[t] * phi(v[t] - theta[t]) + alpha * eps[t+1]
  std::vector<float> eps_next(static_cast<std::size_t>(step_size_), 0.0F);
  for (int64_t t = timesteps_ - 1; t >= 0; --t) {
    const float* dt = gout + t * step_size_;
    const float* vt = vmt + t * step_size_;
    float* gt = gin + t * step_size_;
    for (int64_t i = 0; i < step_size_; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      const float phi = surrogate_grad(config_.surrogate, vt[i]);
      const float eps = dt[i] * phi + alpha * eps_next[idx];
      gt[i] = eps;
      eps_next[idx] = eps;
    }
  }
  return grad_current;
}

void AlifLayer::reset_state() {
  saved_vmt_ = tensor::Tensor();
  has_saved_ = false;
}

}  // namespace ndsnn::snn
