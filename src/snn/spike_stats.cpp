#include "snn/spike_stats.hpp"

#include <stdexcept>

namespace ndsnn::snn {

void SpikeStats::record(int64_t fired, int64_t total) {
  if (total < 0 || fired < 0 || fired > total) {
    throw std::invalid_argument("SpikeStats::record: need 0 <= fired <= total");
  }
  fired_ += fired;
  total_ += total;
}

void SpikeStats::record_rate(double rate, int64_t total) {
  if (rate < 0.0 || rate > 1.0) {
    throw std::invalid_argument("SpikeStats::record_rate: rate must be in [0, 1]");
  }
  record(static_cast<int64_t>(rate * static_cast<double>(total) + 0.5), total);
}

double SpikeStats::average_rate() const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(fired_) / static_cast<double>(total_);
}

void SpikeStats::reset() {
  fired_ = 0;
  total_ = 0;
}

}  // namespace ndsnn::snn
