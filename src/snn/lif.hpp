// Leaky Integrate-and-Fire neuron layer with exact BPTT (Eqs. 1-2).
//
// Forward dynamics per timestep t (Eq. 1):
//     v[t] = alpha * v[t-1] + I[t] - theta * o[t-1]      (1a)
//     o[t] = u(v[t] - theta)                             (1b)
// where I[t] is the synaptic current produced by the preceding weight layer
// (conv/linear), alpha in (0,1] is the leak, theta the firing threshold and
// the "- theta * o[t-1]" term is the reset-by-subtraction of the previous
// spike.
//
// Backward (BPTT with surrogate gradient, Eq. 2): with
//     delta[t] = dL/do[t]   (from the layer above)
//     eps[t]   = dL/dv[t]
// the exact recursion, including the reset path, is
//     eps[t] = (delta[t] - theta * eps[t+1] * [!detach_reset]) * phi[t]
//            + alpha * eps[t+1]
//     dL/dI[t] = eps[t]
// The paper's Eq. 2b omits the reset path (standard "detach reset" trick
// from SpikingJelly); `detach_reset` toggles it, default true to match.
//
// Data layout: activations are time-major [T*N, feat...]; the layer is
// given T at construction and slices internally.
#pragma once

#include <vector>

#include "snn/surrogate.hpp"
#include "tensor/tensor.hpp"

namespace ndsnn::snn {

/// Configuration of a LIF layer.
struct LifConfig {
  float alpha = 0.5F;            ///< membrane leak factor, (0, 1]
  float threshold = 1.0F;        ///< firing threshold theta
  bool detach_reset = true;      ///< drop the reset term in BPTT (paper Eq. 2b)
  SurrogateKind surrogate = SurrogateKind::kAtan;

  /// Throws std::invalid_argument when outside valid ranges.
  void validate() const;
};

/// Stateful LIF layer operating on time-major batches.
///
/// forward() consumes the synaptic current for all T steps at once
/// ([T*N, d...]) and emits the spike train of identical shape; backward()
/// runs the reverse-time recursion and returns dL/dI.
class LifLayer {
 public:
  LifLayer(LifConfig config, int64_t timesteps);

  /// Spike train o from synaptic current I. Stores per-step (v - theta)
  /// for the backward pass.
  [[nodiscard]] tensor::Tensor forward(const tensor::Tensor& current);

  /// dL/dI from dL/do. Must follow a forward() with the same shape.
  [[nodiscard]] tensor::Tensor backward(const tensor::Tensor& grad_spikes);

  /// Discard stored state (between batches).
  void reset_state();

  [[nodiscard]] const LifConfig& config() const { return config_; }
  [[nodiscard]] int64_t timesteps() const { return timesteps_; }

  /// Fraction of ones in the last emitted spike train (for SpikeStats).
  [[nodiscard]] double last_spike_rate() const { return last_spike_rate_; }

 private:
  LifConfig config_;
  int64_t timesteps_;
  // Saved from forward, both shaped [T*N, d...] flattened:
  tensor::Tensor saved_vmt_;     ///< v[t] - theta per element
  tensor::Tensor saved_spikes_;  ///< o[t] per element
  int64_t step_size_ = 0;        ///< N * prod(d...) elements per timestep
  bool has_saved_ = false;
  double last_spike_rate_ = 0.0;
};

}  // namespace ndsnn::snn
