#include "snn/lif.hpp"

#include <stdexcept>

namespace ndsnn::snn {

void LifConfig::validate() const {
  if (!(alpha > 0.0F && alpha <= 1.0F)) {
    throw std::invalid_argument("LifConfig: alpha must be in (0, 1]");
  }
  if (threshold <= 0.0F) {
    throw std::invalid_argument("LifConfig: threshold must be > 0");
  }
}

LifLayer::LifLayer(LifConfig config, int64_t timesteps)
    : config_(config), timesteps_(timesteps) {
  config_.validate();
  if (timesteps_ < 1) throw std::invalid_argument("LifLayer: timesteps must be >= 1");
}

tensor::Tensor LifLayer::forward(const tensor::Tensor& current) {
  const int64_t total = current.numel();
  if (total % timesteps_ != 0) {
    throw std::invalid_argument("LifLayer::forward: numel " + std::to_string(total) +
                                " not divisible by T=" + std::to_string(timesteps_));
  }
  step_size_ = total / timesteps_;
  saved_vmt_ = tensor::Tensor(current.shape());
  saved_spikes_ = tensor::Tensor(current.shape());

  const float* in = current.data();
  float* vmt = saved_vmt_.data();
  float* spk = saved_spikes_.data();
  const float alpha = config_.alpha;
  const float theta = config_.threshold;

  int64_t fired = 0;
  for (int64_t t = 0; t < timesteps_; ++t) {
    const float* it = in + t * step_size_;
    float* vt = vmt + t * step_size_;
    float* ot = spk + t * step_size_;
    if (t == 0) {
      // v[0] = I[0] with zero initial membrane and no prior spike.
      for (int64_t i = 0; i < step_size_; ++i) {
        const float v = it[i];
        vt[i] = v - theta;
        ot[i] = heaviside(v - theta);
      }
    } else {
      const float* vprev = vmt + (t - 1) * step_size_;
      const float* oprev = spk + (t - 1) * step_size_;
      for (int64_t i = 0; i < step_size_; ++i) {
        // Recover v[t-1] = (v[t-1]-theta) + theta.
        const float v = alpha * (vprev[i] + theta) + it[i] - theta * oprev[i];
        vt[i] = v - theta;
        ot[i] = heaviside(v - theta);
      }
    }
    for (int64_t i = 0; i < step_size_; ++i) fired += ot[i] != 0.0F;
  }
  last_spike_rate_ = static_cast<double>(fired) / static_cast<double>(total);
  has_saved_ = true;
  return saved_spikes_;
}

tensor::Tensor LifLayer::backward(const tensor::Tensor& grad_spikes) {
  if (!has_saved_) {
    throw std::logic_error("LifLayer::backward called before forward");
  }
  if (grad_spikes.shape() != saved_vmt_.shape()) {
    throw std::invalid_argument("LifLayer::backward: grad shape " +
                                grad_spikes.shape().str() + " != forward shape " +
                                saved_vmt_.shape().str());
  }
  tensor::Tensor grad_current(grad_spikes.shape());
  const float* gout = grad_spikes.data();
  const float* vmt = saved_vmt_.data();
  float* gin = grad_current.data();
  const float alpha = config_.alpha;
  const float theta = config_.threshold;
  const bool with_reset = !config_.detach_reset;

  // eps[t] = (delta[t] - theta*eps[t+1] [if reset attached]) * phi[t]
  //        + alpha * eps[t+1];     dL/dI[t] = eps[t]
  std::vector<float> eps_next(static_cast<std::size_t>(step_size_), 0.0F);
  for (int64_t t = timesteps_ - 1; t >= 0; --t) {
    const float* dt = gout + t * step_size_;
    const float* vt = vmt + t * step_size_;
    float* gt = gin + t * step_size_;
    for (int64_t i = 0; i < step_size_; ++i) {
      const float phi = surrogate_grad(config_.surrogate, vt[i]);
      float delta = dt[i];
      if (with_reset) delta -= theta * eps_next[static_cast<std::size_t>(i)];
      const float eps = delta * phi + alpha * eps_next[static_cast<std::size_t>(i)];
      gt[i] = eps;
      eps_next[static_cast<std::size_t>(i)] = eps;
    }
  }
  return grad_current;
}

void LifLayer::reset_state() {
  saved_vmt_ = tensor::Tensor();
  saved_spikes_ = tensor::Tensor();
  has_saved_ = false;
  step_size_ = 0;
}

}  // namespace ndsnn::snn
