# Empty dependencies file for ndsnn_core_tests.
# This may be replaced when dependencies are built.
