file(REMOVE_RECURSE
  "CMakeFiles/ndsnn_core_tests.dir/tests/core/cost_model_test.cpp.o"
  "CMakeFiles/ndsnn_core_tests.dir/tests/core/cost_model_test.cpp.o.d"
  "CMakeFiles/ndsnn_core_tests.dir/tests/core/experiment_test.cpp.o"
  "CMakeFiles/ndsnn_core_tests.dir/tests/core/experiment_test.cpp.o.d"
  "CMakeFiles/ndsnn_core_tests.dir/tests/core/flops_model_test.cpp.o"
  "CMakeFiles/ndsnn_core_tests.dir/tests/core/flops_model_test.cpp.o.d"
  "CMakeFiles/ndsnn_core_tests.dir/tests/core/gmp_snip_test.cpp.o"
  "CMakeFiles/ndsnn_core_tests.dir/tests/core/gmp_snip_test.cpp.o.d"
  "CMakeFiles/ndsnn_core_tests.dir/tests/core/lth_admm_test.cpp.o"
  "CMakeFiles/ndsnn_core_tests.dir/tests/core/lth_admm_test.cpp.o.d"
  "CMakeFiles/ndsnn_core_tests.dir/tests/core/methods_test.cpp.o"
  "CMakeFiles/ndsnn_core_tests.dir/tests/core/methods_test.cpp.o.d"
  "CMakeFiles/ndsnn_core_tests.dir/tests/core/ndsnn_method_test.cpp.o"
  "CMakeFiles/ndsnn_core_tests.dir/tests/core/ndsnn_method_test.cpp.o.d"
  "CMakeFiles/ndsnn_core_tests.dir/tests/core/trainer_test.cpp.o"
  "CMakeFiles/ndsnn_core_tests.dir/tests/core/trainer_test.cpp.o.d"
  "ndsnn_core_tests"
  "ndsnn_core_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndsnn_core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
