
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/cost_model_test.cpp" "CMakeFiles/ndsnn_core_tests.dir/tests/core/cost_model_test.cpp.o" "gcc" "CMakeFiles/ndsnn_core_tests.dir/tests/core/cost_model_test.cpp.o.d"
  "/root/repo/tests/core/experiment_test.cpp" "CMakeFiles/ndsnn_core_tests.dir/tests/core/experiment_test.cpp.o" "gcc" "CMakeFiles/ndsnn_core_tests.dir/tests/core/experiment_test.cpp.o.d"
  "/root/repo/tests/core/flops_model_test.cpp" "CMakeFiles/ndsnn_core_tests.dir/tests/core/flops_model_test.cpp.o" "gcc" "CMakeFiles/ndsnn_core_tests.dir/tests/core/flops_model_test.cpp.o.d"
  "/root/repo/tests/core/gmp_snip_test.cpp" "CMakeFiles/ndsnn_core_tests.dir/tests/core/gmp_snip_test.cpp.o" "gcc" "CMakeFiles/ndsnn_core_tests.dir/tests/core/gmp_snip_test.cpp.o.d"
  "/root/repo/tests/core/lth_admm_test.cpp" "CMakeFiles/ndsnn_core_tests.dir/tests/core/lth_admm_test.cpp.o" "gcc" "CMakeFiles/ndsnn_core_tests.dir/tests/core/lth_admm_test.cpp.o.d"
  "/root/repo/tests/core/methods_test.cpp" "CMakeFiles/ndsnn_core_tests.dir/tests/core/methods_test.cpp.o" "gcc" "CMakeFiles/ndsnn_core_tests.dir/tests/core/methods_test.cpp.o.d"
  "/root/repo/tests/core/ndsnn_method_test.cpp" "CMakeFiles/ndsnn_core_tests.dir/tests/core/ndsnn_method_test.cpp.o" "gcc" "CMakeFiles/ndsnn_core_tests.dir/tests/core/ndsnn_method_test.cpp.o.d"
  "/root/repo/tests/core/trainer_test.cpp" "CMakeFiles/ndsnn_core_tests.dir/tests/core/trainer_test.cpp.o" "gcc" "CMakeFiles/ndsnn_core_tests.dir/tests/core/trainer_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/CMakeFiles/ndsnn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
