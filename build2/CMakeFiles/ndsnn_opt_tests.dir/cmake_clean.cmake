file(REMOVE_RECURSE
  "CMakeFiles/ndsnn_opt_tests.dir/tests/opt/lr_scheduler_test.cpp.o"
  "CMakeFiles/ndsnn_opt_tests.dir/tests/opt/lr_scheduler_test.cpp.o.d"
  "CMakeFiles/ndsnn_opt_tests.dir/tests/opt/sgd_test.cpp.o"
  "CMakeFiles/ndsnn_opt_tests.dir/tests/opt/sgd_test.cpp.o.d"
  "ndsnn_opt_tests"
  "ndsnn_opt_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndsnn_opt_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
