# Empty compiler generated dependencies file for ndsnn_opt_tests.
# This may be replaced when dependencies are built.
