
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/runtime/batch_executor_test.cpp" "CMakeFiles/ndsnn_runtime_tests.dir/tests/runtime/batch_executor_test.cpp.o" "gcc" "CMakeFiles/ndsnn_runtime_tests.dir/tests/runtime/batch_executor_test.cpp.o.d"
  "/root/repo/tests/runtime/compiled_network_test.cpp" "CMakeFiles/ndsnn_runtime_tests.dir/tests/runtime/compiled_network_test.cpp.o" "gcc" "CMakeFiles/ndsnn_runtime_tests.dir/tests/runtime/compiled_network_test.cpp.o.d"
  "/root/repo/tests/runtime/differential_test.cpp" "CMakeFiles/ndsnn_runtime_tests.dir/tests/runtime/differential_test.cpp.o" "gcc" "CMakeFiles/ndsnn_runtime_tests.dir/tests/runtime/differential_test.cpp.o.d"
  "/root/repo/tests/runtime/spmm_test.cpp" "CMakeFiles/ndsnn_runtime_tests.dir/tests/runtime/spmm_test.cpp.o" "gcc" "CMakeFiles/ndsnn_runtime_tests.dir/tests/runtime/spmm_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/CMakeFiles/ndsnn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
