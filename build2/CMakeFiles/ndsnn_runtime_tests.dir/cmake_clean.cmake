file(REMOVE_RECURSE
  "CMakeFiles/ndsnn_runtime_tests.dir/tests/runtime/batch_executor_test.cpp.o"
  "CMakeFiles/ndsnn_runtime_tests.dir/tests/runtime/batch_executor_test.cpp.o.d"
  "CMakeFiles/ndsnn_runtime_tests.dir/tests/runtime/compiled_network_test.cpp.o"
  "CMakeFiles/ndsnn_runtime_tests.dir/tests/runtime/compiled_network_test.cpp.o.d"
  "CMakeFiles/ndsnn_runtime_tests.dir/tests/runtime/differential_test.cpp.o"
  "CMakeFiles/ndsnn_runtime_tests.dir/tests/runtime/differential_test.cpp.o.d"
  "CMakeFiles/ndsnn_runtime_tests.dir/tests/runtime/spmm_test.cpp.o"
  "CMakeFiles/ndsnn_runtime_tests.dir/tests/runtime/spmm_test.cpp.o.d"
  "ndsnn_runtime_tests"
  "ndsnn_runtime_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndsnn_runtime_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
