# Empty compiler generated dependencies file for ndsnn_runtime_tests.
# This may be replaced when dependencies are built.
