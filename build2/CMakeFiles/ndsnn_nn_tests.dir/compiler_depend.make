# Empty compiler generated dependencies file for ndsnn_nn_tests.
# This may be replaced when dependencies are built.
