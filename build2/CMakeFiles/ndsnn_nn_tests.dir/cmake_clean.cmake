file(REMOVE_RECURSE
  "CMakeFiles/ndsnn_nn_tests.dir/tests/nn/batchnorm_test.cpp.o"
  "CMakeFiles/ndsnn_nn_tests.dir/tests/nn/batchnorm_test.cpp.o.d"
  "CMakeFiles/ndsnn_nn_tests.dir/tests/nn/checkpoint_test.cpp.o"
  "CMakeFiles/ndsnn_nn_tests.dir/tests/nn/checkpoint_test.cpp.o.d"
  "CMakeFiles/ndsnn_nn_tests.dir/tests/nn/conv2d_test.cpp.o"
  "CMakeFiles/ndsnn_nn_tests.dir/tests/nn/conv2d_test.cpp.o.d"
  "CMakeFiles/ndsnn_nn_tests.dir/tests/nn/gradcheck_test.cpp.o"
  "CMakeFiles/ndsnn_nn_tests.dir/tests/nn/gradcheck_test.cpp.o.d"
  "CMakeFiles/ndsnn_nn_tests.dir/tests/nn/linear_test.cpp.o"
  "CMakeFiles/ndsnn_nn_tests.dir/tests/nn/linear_test.cpp.o.d"
  "CMakeFiles/ndsnn_nn_tests.dir/tests/nn/loss_test.cpp.o"
  "CMakeFiles/ndsnn_nn_tests.dir/tests/nn/loss_test.cpp.o.d"
  "CMakeFiles/ndsnn_nn_tests.dir/tests/nn/models_test.cpp.o"
  "CMakeFiles/ndsnn_nn_tests.dir/tests/nn/models_test.cpp.o.d"
  "CMakeFiles/ndsnn_nn_tests.dir/tests/nn/network_test.cpp.o"
  "CMakeFiles/ndsnn_nn_tests.dir/tests/nn/network_test.cpp.o.d"
  "CMakeFiles/ndsnn_nn_tests.dir/tests/nn/neuron_activations_test.cpp.o"
  "CMakeFiles/ndsnn_nn_tests.dir/tests/nn/neuron_activations_test.cpp.o.d"
  "CMakeFiles/ndsnn_nn_tests.dir/tests/nn/pool_test.cpp.o"
  "CMakeFiles/ndsnn_nn_tests.dir/tests/nn/pool_test.cpp.o.d"
  "CMakeFiles/ndsnn_nn_tests.dir/tests/nn/residual_test.cpp.o"
  "CMakeFiles/ndsnn_nn_tests.dir/tests/nn/residual_test.cpp.o.d"
  "CMakeFiles/ndsnn_nn_tests.dir/tests/nn/sequential_test.cpp.o"
  "CMakeFiles/ndsnn_nn_tests.dir/tests/nn/sequential_test.cpp.o.d"
  "ndsnn_nn_tests"
  "ndsnn_nn_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndsnn_nn_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
