
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/nn/batchnorm_test.cpp" "CMakeFiles/ndsnn_nn_tests.dir/tests/nn/batchnorm_test.cpp.o" "gcc" "CMakeFiles/ndsnn_nn_tests.dir/tests/nn/batchnorm_test.cpp.o.d"
  "/root/repo/tests/nn/checkpoint_test.cpp" "CMakeFiles/ndsnn_nn_tests.dir/tests/nn/checkpoint_test.cpp.o" "gcc" "CMakeFiles/ndsnn_nn_tests.dir/tests/nn/checkpoint_test.cpp.o.d"
  "/root/repo/tests/nn/conv2d_test.cpp" "CMakeFiles/ndsnn_nn_tests.dir/tests/nn/conv2d_test.cpp.o" "gcc" "CMakeFiles/ndsnn_nn_tests.dir/tests/nn/conv2d_test.cpp.o.d"
  "/root/repo/tests/nn/gradcheck_test.cpp" "CMakeFiles/ndsnn_nn_tests.dir/tests/nn/gradcheck_test.cpp.o" "gcc" "CMakeFiles/ndsnn_nn_tests.dir/tests/nn/gradcheck_test.cpp.o.d"
  "/root/repo/tests/nn/linear_test.cpp" "CMakeFiles/ndsnn_nn_tests.dir/tests/nn/linear_test.cpp.o" "gcc" "CMakeFiles/ndsnn_nn_tests.dir/tests/nn/linear_test.cpp.o.d"
  "/root/repo/tests/nn/loss_test.cpp" "CMakeFiles/ndsnn_nn_tests.dir/tests/nn/loss_test.cpp.o" "gcc" "CMakeFiles/ndsnn_nn_tests.dir/tests/nn/loss_test.cpp.o.d"
  "/root/repo/tests/nn/models_test.cpp" "CMakeFiles/ndsnn_nn_tests.dir/tests/nn/models_test.cpp.o" "gcc" "CMakeFiles/ndsnn_nn_tests.dir/tests/nn/models_test.cpp.o.d"
  "/root/repo/tests/nn/network_test.cpp" "CMakeFiles/ndsnn_nn_tests.dir/tests/nn/network_test.cpp.o" "gcc" "CMakeFiles/ndsnn_nn_tests.dir/tests/nn/network_test.cpp.o.d"
  "/root/repo/tests/nn/neuron_activations_test.cpp" "CMakeFiles/ndsnn_nn_tests.dir/tests/nn/neuron_activations_test.cpp.o" "gcc" "CMakeFiles/ndsnn_nn_tests.dir/tests/nn/neuron_activations_test.cpp.o.d"
  "/root/repo/tests/nn/pool_test.cpp" "CMakeFiles/ndsnn_nn_tests.dir/tests/nn/pool_test.cpp.o" "gcc" "CMakeFiles/ndsnn_nn_tests.dir/tests/nn/pool_test.cpp.o.d"
  "/root/repo/tests/nn/residual_test.cpp" "CMakeFiles/ndsnn_nn_tests.dir/tests/nn/residual_test.cpp.o" "gcc" "CMakeFiles/ndsnn_nn_tests.dir/tests/nn/residual_test.cpp.o.d"
  "/root/repo/tests/nn/sequential_test.cpp" "CMakeFiles/ndsnn_nn_tests.dir/tests/nn/sequential_test.cpp.o" "gcc" "CMakeFiles/ndsnn_nn_tests.dir/tests/nn/sequential_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/CMakeFiles/ndsnn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
