# Empty compiler generated dependencies file for ndsnn_util_tests.
# This may be replaced when dependencies are built.
