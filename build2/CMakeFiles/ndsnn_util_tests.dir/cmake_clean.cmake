file(REMOVE_RECURSE
  "CMakeFiles/ndsnn_util_tests.dir/tests/util/cli_test.cpp.o"
  "CMakeFiles/ndsnn_util_tests.dir/tests/util/cli_test.cpp.o.d"
  "CMakeFiles/ndsnn_util_tests.dir/tests/util/logging_test.cpp.o"
  "CMakeFiles/ndsnn_util_tests.dir/tests/util/logging_test.cpp.o.d"
  "CMakeFiles/ndsnn_util_tests.dir/tests/util/stopwatch_test.cpp.o"
  "CMakeFiles/ndsnn_util_tests.dir/tests/util/stopwatch_test.cpp.o.d"
  "CMakeFiles/ndsnn_util_tests.dir/tests/util/table_test.cpp.o"
  "CMakeFiles/ndsnn_util_tests.dir/tests/util/table_test.cpp.o.d"
  "ndsnn_util_tests"
  "ndsnn_util_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndsnn_util_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
