# Empty dependencies file for example_temporal_events.
# This may be replaced when dependencies are built.
