file(REMOVE_RECURSE
  "CMakeFiles/example_temporal_events.dir/examples/temporal_events.cpp.o"
  "CMakeFiles/example_temporal_events.dir/examples/temporal_events.cpp.o.d"
  "examples/temporal_events"
  "examples/temporal_events.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_temporal_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
