file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_admm.dir/bench/table2_admm.cpp.o"
  "CMakeFiles/bench_table2_admm.dir/bench/table2_admm.cpp.o.d"
  "bench/table2_admm"
  "bench/table2_admm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_admm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
