# Empty compiler generated dependencies file for example_schedule_explorer.
# This may be replaced when dependencies are built.
