# Empty dependencies file for ndsnn_data_tests.
# This may be replaced when dependencies are built.
