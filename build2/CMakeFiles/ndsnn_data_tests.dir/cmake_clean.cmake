file(REMOVE_RECURSE
  "CMakeFiles/ndsnn_data_tests.dir/tests/data/augment_test.cpp.o"
  "CMakeFiles/ndsnn_data_tests.dir/tests/data/augment_test.cpp.o.d"
  "CMakeFiles/ndsnn_data_tests.dir/tests/data/dataloader_test.cpp.o"
  "CMakeFiles/ndsnn_data_tests.dir/tests/data/dataloader_test.cpp.o.d"
  "CMakeFiles/ndsnn_data_tests.dir/tests/data/event_synthetic_test.cpp.o"
  "CMakeFiles/ndsnn_data_tests.dir/tests/data/event_synthetic_test.cpp.o.d"
  "CMakeFiles/ndsnn_data_tests.dir/tests/data/synthetic_test.cpp.o"
  "CMakeFiles/ndsnn_data_tests.dir/tests/data/synthetic_test.cpp.o.d"
  "ndsnn_data_tests"
  "ndsnn_data_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndsnn_data_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
