# Empty compiler generated dependencies file for bench_table3_initial_sparsity.
# This may be replaced when dependencies are built.
