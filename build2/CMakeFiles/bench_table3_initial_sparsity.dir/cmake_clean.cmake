file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_initial_sparsity.dir/bench/table3_initial_sparsity.cpp.o"
  "CMakeFiles/bench_table3_initial_sparsity.dir/bench/table3_initial_sparsity.cpp.o.d"
  "bench/table3_initial_sparsity"
  "bench/table3_initial_sparsity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_initial_sparsity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
