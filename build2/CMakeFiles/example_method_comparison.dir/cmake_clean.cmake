file(REMOVE_RECURSE
  "CMakeFiles/example_method_comparison.dir/examples/method_comparison.cpp.o"
  "CMakeFiles/example_method_comparison.dir/examples/method_comparison.cpp.o.d"
  "examples/method_comparison"
  "examples/method_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_method_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
