file(REMOVE_RECURSE
  "libndsnn.a"
)
