# Empty compiler generated dependencies file for ndsnn.
# This may be replaced when dependencies are built.
