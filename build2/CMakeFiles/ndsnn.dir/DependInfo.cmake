
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/admm_method.cpp" "CMakeFiles/ndsnn.dir/src/core/admm_method.cpp.o" "gcc" "CMakeFiles/ndsnn.dir/src/core/admm_method.cpp.o.d"
  "/root/repo/src/core/cost_model.cpp" "CMakeFiles/ndsnn.dir/src/core/cost_model.cpp.o" "gcc" "CMakeFiles/ndsnn.dir/src/core/cost_model.cpp.o.d"
  "/root/repo/src/core/dense_method.cpp" "CMakeFiles/ndsnn.dir/src/core/dense_method.cpp.o" "gcc" "CMakeFiles/ndsnn.dir/src/core/dense_method.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "CMakeFiles/ndsnn.dir/src/core/experiment.cpp.o" "gcc" "CMakeFiles/ndsnn.dir/src/core/experiment.cpp.o.d"
  "/root/repo/src/core/flops_model.cpp" "CMakeFiles/ndsnn.dir/src/core/flops_model.cpp.o" "gcc" "CMakeFiles/ndsnn.dir/src/core/flops_model.cpp.o.d"
  "/root/repo/src/core/gmp_method.cpp" "CMakeFiles/ndsnn.dir/src/core/gmp_method.cpp.o" "gcc" "CMakeFiles/ndsnn.dir/src/core/gmp_method.cpp.o.d"
  "/root/repo/src/core/lth_method.cpp" "CMakeFiles/ndsnn.dir/src/core/lth_method.cpp.o" "gcc" "CMakeFiles/ndsnn.dir/src/core/lth_method.cpp.o.d"
  "/root/repo/src/core/method.cpp" "CMakeFiles/ndsnn.dir/src/core/method.cpp.o" "gcc" "CMakeFiles/ndsnn.dir/src/core/method.cpp.o.d"
  "/root/repo/src/core/ndsnn_method.cpp" "CMakeFiles/ndsnn.dir/src/core/ndsnn_method.cpp.o" "gcc" "CMakeFiles/ndsnn.dir/src/core/ndsnn_method.cpp.o.d"
  "/root/repo/src/core/nm_projection.cpp" "CMakeFiles/ndsnn.dir/src/core/nm_projection.cpp.o" "gcc" "CMakeFiles/ndsnn.dir/src/core/nm_projection.cpp.o.d"
  "/root/repo/src/core/rigl_method.cpp" "CMakeFiles/ndsnn.dir/src/core/rigl_method.cpp.o" "gcc" "CMakeFiles/ndsnn.dir/src/core/rigl_method.cpp.o.d"
  "/root/repo/src/core/set_method.cpp" "CMakeFiles/ndsnn.dir/src/core/set_method.cpp.o" "gcc" "CMakeFiles/ndsnn.dir/src/core/set_method.cpp.o.d"
  "/root/repo/src/core/snip_method.cpp" "CMakeFiles/ndsnn.dir/src/core/snip_method.cpp.o" "gcc" "CMakeFiles/ndsnn.dir/src/core/snip_method.cpp.o.d"
  "/root/repo/src/core/trainer.cpp" "CMakeFiles/ndsnn.dir/src/core/trainer.cpp.o" "gcc" "CMakeFiles/ndsnn.dir/src/core/trainer.cpp.o.d"
  "/root/repo/src/data/augment.cpp" "CMakeFiles/ndsnn.dir/src/data/augment.cpp.o" "gcc" "CMakeFiles/ndsnn.dir/src/data/augment.cpp.o.d"
  "/root/repo/src/data/dataloader.cpp" "CMakeFiles/ndsnn.dir/src/data/dataloader.cpp.o" "gcc" "CMakeFiles/ndsnn.dir/src/data/dataloader.cpp.o.d"
  "/root/repo/src/data/dataset.cpp" "CMakeFiles/ndsnn.dir/src/data/dataset.cpp.o" "gcc" "CMakeFiles/ndsnn.dir/src/data/dataset.cpp.o.d"
  "/root/repo/src/data/event_synthetic.cpp" "CMakeFiles/ndsnn.dir/src/data/event_synthetic.cpp.o" "gcc" "CMakeFiles/ndsnn.dir/src/data/event_synthetic.cpp.o.d"
  "/root/repo/src/data/synthetic.cpp" "CMakeFiles/ndsnn.dir/src/data/synthetic.cpp.o" "gcc" "CMakeFiles/ndsnn.dir/src/data/synthetic.cpp.o.d"
  "/root/repo/src/nn/batchnorm.cpp" "CMakeFiles/ndsnn.dir/src/nn/batchnorm.cpp.o" "gcc" "CMakeFiles/ndsnn.dir/src/nn/batchnorm.cpp.o.d"
  "/root/repo/src/nn/checkpoint.cpp" "CMakeFiles/ndsnn.dir/src/nn/checkpoint.cpp.o" "gcc" "CMakeFiles/ndsnn.dir/src/nn/checkpoint.cpp.o.d"
  "/root/repo/src/nn/conv2d.cpp" "CMakeFiles/ndsnn.dir/src/nn/conv2d.cpp.o" "gcc" "CMakeFiles/ndsnn.dir/src/nn/conv2d.cpp.o.d"
  "/root/repo/src/nn/flatten.cpp" "CMakeFiles/ndsnn.dir/src/nn/flatten.cpp.o" "gcc" "CMakeFiles/ndsnn.dir/src/nn/flatten.cpp.o.d"
  "/root/repo/src/nn/layer.cpp" "CMakeFiles/ndsnn.dir/src/nn/layer.cpp.o" "gcc" "CMakeFiles/ndsnn.dir/src/nn/layer.cpp.o.d"
  "/root/repo/src/nn/lif_activation.cpp" "CMakeFiles/ndsnn.dir/src/nn/lif_activation.cpp.o" "gcc" "CMakeFiles/ndsnn.dir/src/nn/lif_activation.cpp.o.d"
  "/root/repo/src/nn/linear.cpp" "CMakeFiles/ndsnn.dir/src/nn/linear.cpp.o" "gcc" "CMakeFiles/ndsnn.dir/src/nn/linear.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "CMakeFiles/ndsnn.dir/src/nn/loss.cpp.o" "gcc" "CMakeFiles/ndsnn.dir/src/nn/loss.cpp.o.d"
  "/root/repo/src/nn/models/lenet.cpp" "CMakeFiles/ndsnn.dir/src/nn/models/lenet.cpp.o" "gcc" "CMakeFiles/ndsnn.dir/src/nn/models/lenet.cpp.o.d"
  "/root/repo/src/nn/models/resnet.cpp" "CMakeFiles/ndsnn.dir/src/nn/models/resnet.cpp.o" "gcc" "CMakeFiles/ndsnn.dir/src/nn/models/resnet.cpp.o.d"
  "/root/repo/src/nn/models/vgg.cpp" "CMakeFiles/ndsnn.dir/src/nn/models/vgg.cpp.o" "gcc" "CMakeFiles/ndsnn.dir/src/nn/models/vgg.cpp.o.d"
  "/root/repo/src/nn/models/zoo.cpp" "CMakeFiles/ndsnn.dir/src/nn/models/zoo.cpp.o" "gcc" "CMakeFiles/ndsnn.dir/src/nn/models/zoo.cpp.o.d"
  "/root/repo/src/nn/network.cpp" "CMakeFiles/ndsnn.dir/src/nn/network.cpp.o" "gcc" "CMakeFiles/ndsnn.dir/src/nn/network.cpp.o.d"
  "/root/repo/src/nn/neuron_activations.cpp" "CMakeFiles/ndsnn.dir/src/nn/neuron_activations.cpp.o" "gcc" "CMakeFiles/ndsnn.dir/src/nn/neuron_activations.cpp.o.d"
  "/root/repo/src/nn/pool.cpp" "CMakeFiles/ndsnn.dir/src/nn/pool.cpp.o" "gcc" "CMakeFiles/ndsnn.dir/src/nn/pool.cpp.o.d"
  "/root/repo/src/nn/residual.cpp" "CMakeFiles/ndsnn.dir/src/nn/residual.cpp.o" "gcc" "CMakeFiles/ndsnn.dir/src/nn/residual.cpp.o.d"
  "/root/repo/src/nn/sequential.cpp" "CMakeFiles/ndsnn.dir/src/nn/sequential.cpp.o" "gcc" "CMakeFiles/ndsnn.dir/src/nn/sequential.cpp.o.d"
  "/root/repo/src/opt/lr_scheduler.cpp" "CMakeFiles/ndsnn.dir/src/opt/lr_scheduler.cpp.o" "gcc" "CMakeFiles/ndsnn.dir/src/opt/lr_scheduler.cpp.o.d"
  "/root/repo/src/opt/sgd.cpp" "CMakeFiles/ndsnn.dir/src/opt/sgd.cpp.o" "gcc" "CMakeFiles/ndsnn.dir/src/opt/sgd.cpp.o.d"
  "/root/repo/src/runtime/batch_executor.cpp" "CMakeFiles/ndsnn.dir/src/runtime/batch_executor.cpp.o" "gcc" "CMakeFiles/ndsnn.dir/src/runtime/batch_executor.cpp.o.d"
  "/root/repo/src/runtime/compiled_network.cpp" "CMakeFiles/ndsnn.dir/src/runtime/compiled_network.cpp.o" "gcc" "CMakeFiles/ndsnn.dir/src/runtime/compiled_network.cpp.o.d"
  "/root/repo/src/snn/alif.cpp" "CMakeFiles/ndsnn.dir/src/snn/alif.cpp.o" "gcc" "CMakeFiles/ndsnn.dir/src/snn/alif.cpp.o.d"
  "/root/repo/src/snn/encoder.cpp" "CMakeFiles/ndsnn.dir/src/snn/encoder.cpp.o" "gcc" "CMakeFiles/ndsnn.dir/src/snn/encoder.cpp.o.d"
  "/root/repo/src/snn/lif.cpp" "CMakeFiles/ndsnn.dir/src/snn/lif.cpp.o" "gcc" "CMakeFiles/ndsnn.dir/src/snn/lif.cpp.o.d"
  "/root/repo/src/snn/plif.cpp" "CMakeFiles/ndsnn.dir/src/snn/plif.cpp.o" "gcc" "CMakeFiles/ndsnn.dir/src/snn/plif.cpp.o.d"
  "/root/repo/src/snn/spike_stats.cpp" "CMakeFiles/ndsnn.dir/src/snn/spike_stats.cpp.o" "gcc" "CMakeFiles/ndsnn.dir/src/snn/spike_stats.cpp.o.d"
  "/root/repo/src/snn/surrogate.cpp" "CMakeFiles/ndsnn.dir/src/snn/surrogate.cpp.o" "gcc" "CMakeFiles/ndsnn.dir/src/snn/surrogate.cpp.o.d"
  "/root/repo/src/sparse/bcsr.cpp" "CMakeFiles/ndsnn.dir/src/sparse/bcsr.cpp.o" "gcc" "CMakeFiles/ndsnn.dir/src/sparse/bcsr.cpp.o.d"
  "/root/repo/src/sparse/csr.cpp" "CMakeFiles/ndsnn.dir/src/sparse/csr.cpp.o" "gcc" "CMakeFiles/ndsnn.dir/src/sparse/csr.cpp.o.d"
  "/root/repo/src/sparse/distribution.cpp" "CMakeFiles/ndsnn.dir/src/sparse/distribution.cpp.o" "gcc" "CMakeFiles/ndsnn.dir/src/sparse/distribution.cpp.o.d"
  "/root/repo/src/sparse/mask.cpp" "CMakeFiles/ndsnn.dir/src/sparse/mask.cpp.o" "gcc" "CMakeFiles/ndsnn.dir/src/sparse/mask.cpp.o.d"
  "/root/repo/src/sparse/memory_model.cpp" "CMakeFiles/ndsnn.dir/src/sparse/memory_model.cpp.o" "gcc" "CMakeFiles/ndsnn.dir/src/sparse/memory_model.cpp.o.d"
  "/root/repo/src/sparse/schedule.cpp" "CMakeFiles/ndsnn.dir/src/sparse/schedule.cpp.o" "gcc" "CMakeFiles/ndsnn.dir/src/sparse/schedule.cpp.o.d"
  "/root/repo/src/sparse/structured.cpp" "CMakeFiles/ndsnn.dir/src/sparse/structured.cpp.o" "gcc" "CMakeFiles/ndsnn.dir/src/sparse/structured.cpp.o.d"
  "/root/repo/src/sparse/topk.cpp" "CMakeFiles/ndsnn.dir/src/sparse/topk.cpp.o" "gcc" "CMakeFiles/ndsnn.dir/src/sparse/topk.cpp.o.d"
  "/root/repo/src/tensor/im2col.cpp" "CMakeFiles/ndsnn.dir/src/tensor/im2col.cpp.o" "gcc" "CMakeFiles/ndsnn.dir/src/tensor/im2col.cpp.o.d"
  "/root/repo/src/tensor/matmul.cpp" "CMakeFiles/ndsnn.dir/src/tensor/matmul.cpp.o" "gcc" "CMakeFiles/ndsnn.dir/src/tensor/matmul.cpp.o.d"
  "/root/repo/src/tensor/ops.cpp" "CMakeFiles/ndsnn.dir/src/tensor/ops.cpp.o" "gcc" "CMakeFiles/ndsnn.dir/src/tensor/ops.cpp.o.d"
  "/root/repo/src/tensor/random.cpp" "CMakeFiles/ndsnn.dir/src/tensor/random.cpp.o" "gcc" "CMakeFiles/ndsnn.dir/src/tensor/random.cpp.o.d"
  "/root/repo/src/tensor/serialize.cpp" "CMakeFiles/ndsnn.dir/src/tensor/serialize.cpp.o" "gcc" "CMakeFiles/ndsnn.dir/src/tensor/serialize.cpp.o.d"
  "/root/repo/src/tensor/shape.cpp" "CMakeFiles/ndsnn.dir/src/tensor/shape.cpp.o" "gcc" "CMakeFiles/ndsnn.dir/src/tensor/shape.cpp.o.d"
  "/root/repo/src/tensor/tensor.cpp" "CMakeFiles/ndsnn.dir/src/tensor/tensor.cpp.o" "gcc" "CMakeFiles/ndsnn.dir/src/tensor/tensor.cpp.o.d"
  "/root/repo/src/util/cli.cpp" "CMakeFiles/ndsnn.dir/src/util/cli.cpp.o" "gcc" "CMakeFiles/ndsnn.dir/src/util/cli.cpp.o.d"
  "/root/repo/src/util/logging.cpp" "CMakeFiles/ndsnn.dir/src/util/logging.cpp.o" "gcc" "CMakeFiles/ndsnn.dir/src/util/logging.cpp.o.d"
  "/root/repo/src/util/stopwatch.cpp" "CMakeFiles/ndsnn.dir/src/util/stopwatch.cpp.o" "gcc" "CMakeFiles/ndsnn.dir/src/util/stopwatch.cpp.o.d"
  "/root/repo/src/util/table.cpp" "CMakeFiles/ndsnn.dir/src/util/table.cpp.o" "gcc" "CMakeFiles/ndsnn.dir/src/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
