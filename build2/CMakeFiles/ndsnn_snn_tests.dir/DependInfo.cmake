
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/snn/alif_test.cpp" "CMakeFiles/ndsnn_snn_tests.dir/tests/snn/alif_test.cpp.o" "gcc" "CMakeFiles/ndsnn_snn_tests.dir/tests/snn/alif_test.cpp.o.d"
  "/root/repo/tests/snn/encoder_test.cpp" "CMakeFiles/ndsnn_snn_tests.dir/tests/snn/encoder_test.cpp.o" "gcc" "CMakeFiles/ndsnn_snn_tests.dir/tests/snn/encoder_test.cpp.o.d"
  "/root/repo/tests/snn/lif_test.cpp" "CMakeFiles/ndsnn_snn_tests.dir/tests/snn/lif_test.cpp.o" "gcc" "CMakeFiles/ndsnn_snn_tests.dir/tests/snn/lif_test.cpp.o.d"
  "/root/repo/tests/snn/plif_test.cpp" "CMakeFiles/ndsnn_snn_tests.dir/tests/snn/plif_test.cpp.o" "gcc" "CMakeFiles/ndsnn_snn_tests.dir/tests/snn/plif_test.cpp.o.d"
  "/root/repo/tests/snn/spike_stats_test.cpp" "CMakeFiles/ndsnn_snn_tests.dir/tests/snn/spike_stats_test.cpp.o" "gcc" "CMakeFiles/ndsnn_snn_tests.dir/tests/snn/spike_stats_test.cpp.o.d"
  "/root/repo/tests/snn/surrogate_test.cpp" "CMakeFiles/ndsnn_snn_tests.dir/tests/snn/surrogate_test.cpp.o" "gcc" "CMakeFiles/ndsnn_snn_tests.dir/tests/snn/surrogate_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/CMakeFiles/ndsnn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
