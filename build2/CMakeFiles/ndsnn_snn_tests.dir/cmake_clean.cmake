file(REMOVE_RECURSE
  "CMakeFiles/ndsnn_snn_tests.dir/tests/snn/alif_test.cpp.o"
  "CMakeFiles/ndsnn_snn_tests.dir/tests/snn/alif_test.cpp.o.d"
  "CMakeFiles/ndsnn_snn_tests.dir/tests/snn/encoder_test.cpp.o"
  "CMakeFiles/ndsnn_snn_tests.dir/tests/snn/encoder_test.cpp.o.d"
  "CMakeFiles/ndsnn_snn_tests.dir/tests/snn/lif_test.cpp.o"
  "CMakeFiles/ndsnn_snn_tests.dir/tests/snn/lif_test.cpp.o.d"
  "CMakeFiles/ndsnn_snn_tests.dir/tests/snn/plif_test.cpp.o"
  "CMakeFiles/ndsnn_snn_tests.dir/tests/snn/plif_test.cpp.o.d"
  "CMakeFiles/ndsnn_snn_tests.dir/tests/snn/spike_stats_test.cpp.o"
  "CMakeFiles/ndsnn_snn_tests.dir/tests/snn/spike_stats_test.cpp.o.d"
  "CMakeFiles/ndsnn_snn_tests.dir/tests/snn/surrogate_test.cpp.o"
  "CMakeFiles/ndsnn_snn_tests.dir/tests/snn/surrogate_test.cpp.o.d"
  "ndsnn_snn_tests"
  "ndsnn_snn_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndsnn_snn_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
