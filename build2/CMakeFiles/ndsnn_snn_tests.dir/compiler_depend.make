# Empty compiler generated dependencies file for ndsnn_snn_tests.
# This may be replaced when dependencies are built.
