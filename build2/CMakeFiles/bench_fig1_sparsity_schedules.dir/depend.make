# Empty dependencies file for bench_fig1_sparsity_schedules.
# This may be replaced when dependencies are built.
