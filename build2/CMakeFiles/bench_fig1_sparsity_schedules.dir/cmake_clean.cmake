file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_sparsity_schedules.dir/bench/fig1_sparsity_schedules.cpp.o"
  "CMakeFiles/bench_fig1_sparsity_schedules.dir/bench/fig1_sparsity_schedules.cpp.o.d"
  "bench/fig1_sparsity_schedules"
  "bench/fig1_sparsity_schedules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_sparsity_schedules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
