# Empty compiler generated dependencies file for example_serve_sparse.
# This may be replaced when dependencies are built.
