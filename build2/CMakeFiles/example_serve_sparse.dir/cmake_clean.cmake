file(REMOVE_RECURSE
  "CMakeFiles/example_serve_sparse.dir/examples/serve_sparse.cpp.o"
  "CMakeFiles/example_serve_sparse.dir/examples/serve_sparse.cpp.o.d"
  "examples/serve_sparse"
  "examples/serve_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_serve_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
