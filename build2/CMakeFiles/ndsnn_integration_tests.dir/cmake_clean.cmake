file(REMOVE_RECURSE
  "CMakeFiles/ndsnn_integration_tests.dir/tests/integration/end_to_end_test.cpp.o"
  "CMakeFiles/ndsnn_integration_tests.dir/tests/integration/end_to_end_test.cpp.o.d"
  "CMakeFiles/ndsnn_integration_tests.dir/tests/integration/methods_pipeline_test.cpp.o"
  "CMakeFiles/ndsnn_integration_tests.dir/tests/integration/methods_pipeline_test.cpp.o.d"
  "ndsnn_integration_tests"
  "ndsnn_integration_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndsnn_integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
