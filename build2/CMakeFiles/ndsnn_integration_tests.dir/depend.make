# Empty dependencies file for ndsnn_integration_tests.
# This may be replaced when dependencies are built.
