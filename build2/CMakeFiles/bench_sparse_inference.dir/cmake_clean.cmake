file(REMOVE_RECURSE
  "CMakeFiles/bench_sparse_inference.dir/bench/sparse_inference.cpp.o"
  "CMakeFiles/bench_sparse_inference.dir/bench/sparse_inference.cpp.o.d"
  "bench/sparse_inference"
  "bench/sparse_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sparse_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
