# Empty dependencies file for bench_sparse_inference.
# This may be replaced when dependencies are built.
