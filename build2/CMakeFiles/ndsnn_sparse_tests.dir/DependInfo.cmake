
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sparse/bcsr_test.cpp" "CMakeFiles/ndsnn_sparse_tests.dir/tests/sparse/bcsr_test.cpp.o" "gcc" "CMakeFiles/ndsnn_sparse_tests.dir/tests/sparse/bcsr_test.cpp.o.d"
  "/root/repo/tests/sparse/csr_test.cpp" "CMakeFiles/ndsnn_sparse_tests.dir/tests/sparse/csr_test.cpp.o" "gcc" "CMakeFiles/ndsnn_sparse_tests.dir/tests/sparse/csr_test.cpp.o.d"
  "/root/repo/tests/sparse/distribution_test.cpp" "CMakeFiles/ndsnn_sparse_tests.dir/tests/sparse/distribution_test.cpp.o" "gcc" "CMakeFiles/ndsnn_sparse_tests.dir/tests/sparse/distribution_test.cpp.o.d"
  "/root/repo/tests/sparse/mask_test.cpp" "CMakeFiles/ndsnn_sparse_tests.dir/tests/sparse/mask_test.cpp.o" "gcc" "CMakeFiles/ndsnn_sparse_tests.dir/tests/sparse/mask_test.cpp.o.d"
  "/root/repo/tests/sparse/memory_model_test.cpp" "CMakeFiles/ndsnn_sparse_tests.dir/tests/sparse/memory_model_test.cpp.o" "gcc" "CMakeFiles/ndsnn_sparse_tests.dir/tests/sparse/memory_model_test.cpp.o.d"
  "/root/repo/tests/sparse/schedule_test.cpp" "CMakeFiles/ndsnn_sparse_tests.dir/tests/sparse/schedule_test.cpp.o" "gcc" "CMakeFiles/ndsnn_sparse_tests.dir/tests/sparse/schedule_test.cpp.o.d"
  "/root/repo/tests/sparse/structured_test.cpp" "CMakeFiles/ndsnn_sparse_tests.dir/tests/sparse/structured_test.cpp.o" "gcc" "CMakeFiles/ndsnn_sparse_tests.dir/tests/sparse/structured_test.cpp.o.d"
  "/root/repo/tests/sparse/topk_test.cpp" "CMakeFiles/ndsnn_sparse_tests.dir/tests/sparse/topk_test.cpp.o" "gcc" "CMakeFiles/ndsnn_sparse_tests.dir/tests/sparse/topk_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/CMakeFiles/ndsnn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
