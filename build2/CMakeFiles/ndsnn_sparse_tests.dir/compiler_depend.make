# Empty compiler generated dependencies file for ndsnn_sparse_tests.
# This may be replaced when dependencies are built.
