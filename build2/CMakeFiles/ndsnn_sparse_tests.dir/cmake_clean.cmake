file(REMOVE_RECURSE
  "CMakeFiles/ndsnn_sparse_tests.dir/tests/sparse/bcsr_test.cpp.o"
  "CMakeFiles/ndsnn_sparse_tests.dir/tests/sparse/bcsr_test.cpp.o.d"
  "CMakeFiles/ndsnn_sparse_tests.dir/tests/sparse/csr_test.cpp.o"
  "CMakeFiles/ndsnn_sparse_tests.dir/tests/sparse/csr_test.cpp.o.d"
  "CMakeFiles/ndsnn_sparse_tests.dir/tests/sparse/distribution_test.cpp.o"
  "CMakeFiles/ndsnn_sparse_tests.dir/tests/sparse/distribution_test.cpp.o.d"
  "CMakeFiles/ndsnn_sparse_tests.dir/tests/sparse/mask_test.cpp.o"
  "CMakeFiles/ndsnn_sparse_tests.dir/tests/sparse/mask_test.cpp.o.d"
  "CMakeFiles/ndsnn_sparse_tests.dir/tests/sparse/memory_model_test.cpp.o"
  "CMakeFiles/ndsnn_sparse_tests.dir/tests/sparse/memory_model_test.cpp.o.d"
  "CMakeFiles/ndsnn_sparse_tests.dir/tests/sparse/schedule_test.cpp.o"
  "CMakeFiles/ndsnn_sparse_tests.dir/tests/sparse/schedule_test.cpp.o.d"
  "CMakeFiles/ndsnn_sparse_tests.dir/tests/sparse/structured_test.cpp.o"
  "CMakeFiles/ndsnn_sparse_tests.dir/tests/sparse/structured_test.cpp.o.d"
  "CMakeFiles/ndsnn_sparse_tests.dir/tests/sparse/topk_test.cpp.o"
  "CMakeFiles/ndsnn_sparse_tests.dir/tests/sparse/topk_test.cpp.o.d"
  "ndsnn_sparse_tests"
  "ndsnn_sparse_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndsnn_sparse_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
