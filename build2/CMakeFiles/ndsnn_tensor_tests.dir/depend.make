# Empty dependencies file for ndsnn_tensor_tests.
# This may be replaced when dependencies are built.
