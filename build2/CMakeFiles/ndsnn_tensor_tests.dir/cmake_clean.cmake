file(REMOVE_RECURSE
  "CMakeFiles/ndsnn_tensor_tests.dir/tests/tensor/im2col_test.cpp.o"
  "CMakeFiles/ndsnn_tensor_tests.dir/tests/tensor/im2col_test.cpp.o.d"
  "CMakeFiles/ndsnn_tensor_tests.dir/tests/tensor/matmul_test.cpp.o"
  "CMakeFiles/ndsnn_tensor_tests.dir/tests/tensor/matmul_test.cpp.o.d"
  "CMakeFiles/ndsnn_tensor_tests.dir/tests/tensor/ops_test.cpp.o"
  "CMakeFiles/ndsnn_tensor_tests.dir/tests/tensor/ops_test.cpp.o.d"
  "CMakeFiles/ndsnn_tensor_tests.dir/tests/tensor/random_test.cpp.o"
  "CMakeFiles/ndsnn_tensor_tests.dir/tests/tensor/random_test.cpp.o.d"
  "CMakeFiles/ndsnn_tensor_tests.dir/tests/tensor/serialize_test.cpp.o"
  "CMakeFiles/ndsnn_tensor_tests.dir/tests/tensor/serialize_test.cpp.o.d"
  "CMakeFiles/ndsnn_tensor_tests.dir/tests/tensor/shape_test.cpp.o"
  "CMakeFiles/ndsnn_tensor_tests.dir/tests/tensor/shape_test.cpp.o.d"
  "CMakeFiles/ndsnn_tensor_tests.dir/tests/tensor/tensor_test.cpp.o"
  "CMakeFiles/ndsnn_tensor_tests.dir/tests/tensor/tensor_test.cpp.o.d"
  "ndsnn_tensor_tests"
  "ndsnn_tensor_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndsnn_tensor_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
