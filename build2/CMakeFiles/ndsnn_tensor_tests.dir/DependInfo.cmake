
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/tensor/im2col_test.cpp" "CMakeFiles/ndsnn_tensor_tests.dir/tests/tensor/im2col_test.cpp.o" "gcc" "CMakeFiles/ndsnn_tensor_tests.dir/tests/tensor/im2col_test.cpp.o.d"
  "/root/repo/tests/tensor/matmul_test.cpp" "CMakeFiles/ndsnn_tensor_tests.dir/tests/tensor/matmul_test.cpp.o" "gcc" "CMakeFiles/ndsnn_tensor_tests.dir/tests/tensor/matmul_test.cpp.o.d"
  "/root/repo/tests/tensor/ops_test.cpp" "CMakeFiles/ndsnn_tensor_tests.dir/tests/tensor/ops_test.cpp.o" "gcc" "CMakeFiles/ndsnn_tensor_tests.dir/tests/tensor/ops_test.cpp.o.d"
  "/root/repo/tests/tensor/random_test.cpp" "CMakeFiles/ndsnn_tensor_tests.dir/tests/tensor/random_test.cpp.o" "gcc" "CMakeFiles/ndsnn_tensor_tests.dir/tests/tensor/random_test.cpp.o.d"
  "/root/repo/tests/tensor/serialize_test.cpp" "CMakeFiles/ndsnn_tensor_tests.dir/tests/tensor/serialize_test.cpp.o" "gcc" "CMakeFiles/ndsnn_tensor_tests.dir/tests/tensor/serialize_test.cpp.o.d"
  "/root/repo/tests/tensor/shape_test.cpp" "CMakeFiles/ndsnn_tensor_tests.dir/tests/tensor/shape_test.cpp.o" "gcc" "CMakeFiles/ndsnn_tensor_tests.dir/tests/tensor/shape_test.cpp.o.d"
  "/root/repo/tests/tensor/tensor_test.cpp" "CMakeFiles/ndsnn_tensor_tests.dir/tests/tensor/tensor_test.cpp.o" "gcc" "CMakeFiles/ndsnn_tensor_tests.dir/tests/tensor/tensor_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/CMakeFiles/ndsnn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
