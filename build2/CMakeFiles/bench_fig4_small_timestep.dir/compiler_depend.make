# Empty compiler generated dependencies file for bench_fig4_small_timestep.
# This may be replaced when dependencies are built.
