file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_small_timestep.dir/bench/fig4_small_timestep.cpp.o"
  "CMakeFiles/bench_fig4_small_timestep.dir/bench/fig4_small_timestep.cpp.o.d"
  "bench/fig4_small_timestep"
  "bench/fig4_small_timestep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_small_timestep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
