# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build2
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(core "/root/repo/build2/ndsnn_core_tests")
set_tests_properties(core PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;63;add_test;/root/repo/CMakeLists.txt;0;")
add_test(data "/root/repo/build2/ndsnn_data_tests")
set_tests_properties(data PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;63;add_test;/root/repo/CMakeLists.txt;0;")
add_test(integration "/root/repo/build2/ndsnn_integration_tests")
set_tests_properties(integration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;63;add_test;/root/repo/CMakeLists.txt;0;")
add_test(nn "/root/repo/build2/ndsnn_nn_tests")
set_tests_properties(nn PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;63;add_test;/root/repo/CMakeLists.txt;0;")
add_test(opt "/root/repo/build2/ndsnn_opt_tests")
set_tests_properties(opt PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;63;add_test;/root/repo/CMakeLists.txt;0;")
add_test(runtime "/root/repo/build2/ndsnn_runtime_tests")
set_tests_properties(runtime PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;63;add_test;/root/repo/CMakeLists.txt;0;")
add_test(snn "/root/repo/build2/ndsnn_snn_tests")
set_tests_properties(snn PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;63;add_test;/root/repo/CMakeLists.txt;0;")
add_test(sparse "/root/repo/build2/ndsnn_sparse_tests")
set_tests_properties(sparse PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;63;add_test;/root/repo/CMakeLists.txt;0;")
add_test(tensor "/root/repo/build2/ndsnn_tensor_tests")
set_tests_properties(tensor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;63;add_test;/root/repo/CMakeLists.txt;0;")
add_test(util "/root/repo/build2/ndsnn_util_tests")
set_tests_properties(util PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;63;add_test;/root/repo/CMakeLists.txt;0;")
