// Ablations of NDSNN's design choices (DESIGN.md section 5):
//   1. growth criterion: gradient-magnitude (paper) vs random (SET-style)
//   2. sparsity ramp: cubic Eq. 4 (paper) vs linear
//   3. layer distribution: ERK (paper) vs uniform
//   4. death-rate floor d_min sweep
// Each ablation trains the same model/data and reports accuracy at the
// final sparsity, isolating the contribution of each ingredient.
#include <cstdio>
#include <functional>
#include <memory>

#include "core/experiment.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

namespace {

double run_variant(const ndsnn::core::ExperimentConfig& base,
                   const std::function<void(ndsnn::core::NdsnnConfig&)>& tweak) {
  ndsnn::core::Experiment exp = ndsnn::core::build_experiment(base);
  const int64_t iters =
      (base.train_samples + base.batch_size - 1) / base.batch_size * base.epochs;

  ndsnn::core::NdsnnConfig c;
  c.initial_sparsity = base.theta_initial();
  c.final_sparsity = base.sparsity;
  c.delta_t = std::max<int64_t>(2, iters / 48);
  c.t_end = iters * 3 / 4;
  tweak(c);
  ndsnn::core::NdsnnMethod method(c);

  ndsnn::core::Trainer trainer(*exp.network, method, *exp.train_set, *exp.test_set,
                               exp.trainer);
  return trainer.run().best_acc_at_final_sparsity;
}

}  // namespace

int main(int argc, char** argv) {
  ndsnn::util::set_log_level(ndsnn::util::LogLevel::kWarn);
  const ndsnn::util::Cli cli(argc, argv);

  ndsnn::core::ExperimentConfig base;
  base.arch = "lenet5";
  base.dataset = "cifar10";
  base.sparsity = cli.get_double("--sparsity", 0.95);
  base.epochs = cli.get_int("--epochs", 12);
  base.train_samples = cli.get_int("--samples", 384);
  base.test_samples = 192;
  base.model_scale = 2.0;
  base.data_scale = 0.5;
  base.timesteps = 2;

  std::printf("=== NDSNN design ablations (LeNet-5, target sparsity %.2f) ===\n\n",
              base.sparsity);

  ndsnn::util::Table table({"variant", "acc % @ final sparsity", "note"});

  const double paper = run_variant(base, [](auto&) {});
  table.add_row({"NDSNN (paper: cubic + gradient growth + ERK)",
                 ndsnn::util::fmt(paper), "reference"});

  const double random_growth =
      run_variant(base, [](auto& c) { c.gradient_growth = false; });
  table.add_row({"random growth (SET-style)", ndsnn::util::fmt(random_growth),
                 "isolates the RigL-style growth criterion"});

  const double linear_ramp = run_variant(base, [](auto& c) { c.ramp_exponent = 1.0; });
  table.add_row({"linear ramp (Eq. 4 exponent 1)", ndsnn::util::fmt(linear_ramp),
                 "prunes harder early"});

  const double uniform = run_variant(base, [](auto& c) { c.use_erk = false; });
  table.add_row({"uniform layer distribution", ndsnn::util::fmt(uniform),
                 "thin layers over-pruned"});

  for (const double dmin : {0.0, 0.05}) {
    const double acc = run_variant(base, [dmin](auto& c) { c.min_death_rate = dmin; });
    table.add_row({"d_min = " + ndsnn::util::fmt(dmin, 2), ndsnn::util::fmt(acc),
                   "exploration floor"});
  }

  table.print();
  std::printf("\npaper configuration should be at or near the top.\n");
  return 0;
}
