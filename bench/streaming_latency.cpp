// Streaming latency bench: per-event latency of a StreamSession versus
// the whole-window baseline — the regression gate for the streaming
// subsystem.
//
//   ./bench/streaming_latency [--frames 32] [--batch 4] [--threads 2]
//                             [--silent-every 2] [--seed 42]
//                             [--json out.json]
//
// One masked LeNet plan (this bench measures the streaming machinery,
// not kernels). A window of --frames input frames is fed three ways:
//
//   1. whole-window — the frames are concatenated time-major and run
//      through Plan::execute in one pass, the way CompiledNetwork::run
//      works. Every event's result only exists when the WHOLE window
//      has finished: per-event latency == window latency.
//   2. streamed (serial) — a StreamSession consumes one frame per
//      step() call; each event's latency is its own step's wall time.
//   3. streamed (pipelined) — run_steps() overlaps stages across steps
//      on --threads pipeline lanes; per-event latency is submission ->
//      that step's completion.
//
// Every --silent-every'th frame is all-zero (an event camera emitting
// nothing), which the delta path must turn into skipped weight ops —
// the bench asserts delta_skips > 0 and reports the count.
//
// Gates (tools/check_bench_regression.py --streaming):
//   - streamed per-event p99 must beat the whole-window latency (the
//     point of streaming; holds structurally on any core count),
//   - delta_skips > 0 (the delta path must actually fire),
//   - streamed outputs must match the whole-window pass bitwise.
// Pipelining speedup is informational below 4 cores.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "nn/models/zoo.hpp"
#include "runtime/compiled_network.hpp"
#include "runtime/stream_session.hpp"
#include "sparse/mask.hpp"
#include "tensor/random.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

using ndsnn::runtime::CompiledNetwork;
using ndsnn::runtime::InferenceResult;
using ndsnn::runtime::StreamSession;
using ndsnn::tensor::Rng;
using ndsnn::tensor::Shape;
using ndsnn::tensor::Tensor;

// The plan is compiled with timesteps == the streamed frame count:
// LifOp::run splits its whole-window input into `timesteps` blocks, so
// the window pass is only the streamed run's sequential reference when
// the two agree (a plan compiled for T=2 run over a 32-frame window
// would recur frame i into frame i+16, not i+1).
CompiledNetwork make_plan(uint64_t seed, int64_t timesteps) {
  ndsnn::nn::ModelSpec spec;
  spec.in_channels = 1;
  spec.image_size = 16;
  spec.timesteps = timesteps;
  spec.seed = seed;
  const auto net = ndsnn::nn::make_lenet5(spec);
  Rng rng(seed + 1);
  for (const auto& p : net->params()) {
    if (!p.prunable) continue;
    const auto active = static_cast<int64_t>(static_cast<double>(p.value->numel()) * 0.05);
    const ndsnn::sparse::Mask mask(p.value->shape(), active, rng);
    mask.apply(*p.value);
  }
  return CompiledNetwork::compile(*net);
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

/// Stack frames time-major: row block t*N..(t+1)*N is frame t — the
/// layout DirectEncoder produces and Plan::execute expects.
Tensor concat_time_major(const std::vector<Tensor>& frames) {
  const int64_t per = frames[0].numel();
  std::vector<int64_t> dims{static_cast<int64_t>(frames.size()) * frames[0].dim(0)};
  for (int64_t d = 1; d < frames[0].rank(); ++d) dims.push_back(frames[0].dim(d));
  Tensor out(Shape{dims});
  for (std::size_t t = 0; t < frames.size(); ++t) {
    for (int64_t i = 0; i < per; ++i) {
      out.at(static_cast<int64_t>(t) * per + i) = frames[t].at(i);
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const ndsnn::util::Cli cli(argc, argv);
  const int frames_n = cli.get_int("--frames", 32);
  const int batch = cli.get_int("--batch", 4);
  const int threads = cli.get_int("--threads", 2);
  const int silent_every = cli.get_int("--silent-every", 2);
  const auto seed = static_cast<uint64_t>(cli.get_int("--seed", 42));
  const std::string json_path = cli.get_string("--json", "");
  const auto cores = static_cast<int64_t>(std::thread::hardware_concurrency());

  const CompiledNetwork plan = make_plan(seed, frames_n);
  Rng rng(seed + 17);
  std::vector<Tensor> frames;
  int64_t silent_frames = 0;
  for (int t = 0; t < frames_n; ++t) {
    Tensor frame(Shape{batch, 1, 16, 16});
    if (silent_every > 0 && t % silent_every == silent_every - 1) {
      ++silent_frames;  // all-zero: an event sensor emitting nothing
    } else {
      // [0, 4): strong enough input current that LIF layers actually
      // fire, so the bitwise gate compares real spike trains and the
      // event path carries non-empty views (not a vacuously-silent net).
      frame.fill_uniform(rng, 0.0F, 4.0F);
    }
    frames.push_back(std::move(frame));
  }
  std::printf("streaming latency bench: %d frames (batch %d, %lld silent), %lld cores\n",
              frames_n, batch, static_cast<long long>(silent_frames),
              static_cast<long long>(cores));

  // --- 1. Whole-window baseline (warmed): one time-major pass. ---
  const Tensor window = concat_time_major(frames);
  (void)plan.plan_ir().execute(window);
  double whole_window_ms = 0.0;
  Tensor window_out;
  {
    const ndsnn::util::Stopwatch sw;
    window_out = plan.plan_ir().execute(window);
    whole_window_ms = sw.millis();
  }

  // --- 2. Streamed, serial: one step() per frame. ---
  StreamSession serial(plan);
  (void)serial.step(frames[0]);  // warm (populates nothing persistent-
  serial.reset();                // state-wise after the reset)
  std::vector<double> step_ms;
  std::vector<Tensor> streamed_out;
  for (const auto& frame : frames) {
    InferenceResult r = serial.step(frame);
    step_ms.push_back(r.latency_ms);
    streamed_out.push_back(std::move(r.logits));
  }
  const int64_t delta_skips = serial.delta_skips();

  // --- 3. Streamed, pipelined: run_steps on a pipeline pool. ---
  StreamSession piped(plan, threads);
  std::vector<double> piped_ms;
  double piped_window_ms = 0.0;
  {
    const ndsnn::util::Stopwatch sw;
    const std::vector<InferenceResult> results = piped.run_steps(frames);
    piped_window_ms = sw.millis();
    for (const auto& r : results) piped_ms.push_back(r.latency_ms);
  }

  // Correctness pin: the streamed per-step outputs must reproduce the
  // whole-window pass bitwise (row block t of the window output).
  bool bitwise_ok = true;
  const int64_t out_per = streamed_out[0].numel();
  for (std::size_t t = 0; t < streamed_out.size() && bitwise_ok; ++t) {
    for (int64_t i = 0; i < out_per; ++i) {
      if (streamed_out[t].at(i) != window_out.at(static_cast<int64_t>(t) * out_per + i)) {
        bitwise_ok = false;
        break;
      }
    }
  }

  const double step_p50 = percentile(step_ms, 0.50);
  const double step_p95 = percentile(step_ms, 0.95);
  const double step_p99 = percentile(step_ms, 0.99);
  const double piped_p50 = percentile(piped_ms, 0.50);
  const double piped_p95 = percentile(piped_ms, 0.95);
  const double piped_p99 = percentile(piped_ms, 0.99);

  ndsnn::util::Table table({"mode", "p50 ms", "p95 ms", "p99 ms", "window ms"});
  table.add_row({"whole-window", ndsnn::util::fmt(whole_window_ms, 2),
                 ndsnn::util::fmt(whole_window_ms, 2), ndsnn::util::fmt(whole_window_ms, 2),
                 ndsnn::util::fmt(whole_window_ms, 2)});
  table.add_row({"streamed", ndsnn::util::fmt(step_p50, 2), ndsnn::util::fmt(step_p95, 2),
                 ndsnn::util::fmt(step_p99, 2), "-"});
  table.add_row({"pipelined", ndsnn::util::fmt(piped_p50, 2), ndsnn::util::fmt(piped_p95, 2),
                 ndsnn::util::fmt(piped_p99, 2), ndsnn::util::fmt(piped_window_ms, 2)});
  table.print();
  std::printf("per-event p99 %.2f ms streamed vs %.2f ms whole-window (%.1fx); "
              "%lld delta skips over %lld silent frames; bitwise %s\n",
              step_p99, whole_window_ms,
              step_p99 > 0.0 ? whole_window_ms / step_p99 : 0.0,
              static_cast<long long>(delta_skips), static_cast<long long>(silent_frames),
              bitwise_ok ? "OK" : "MISMATCH");

  if (!json_path.empty()) {
    ndsnn::util::JsonWriter json;
    json.begin_object();
    json.kv("bench", "streaming_latency");
    json.kv("cores", cores);
    json.kv("frames", frames_n);
    json.kv("batch", batch);
    json.kv("threads", threads);
    json.kv("silent_frames", silent_frames);
    json.key("streaming").begin_object();
    json.kv("whole_window_ms", whole_window_ms);
    json.kv("step_p50_ms", step_p50);
    json.kv("step_p95_ms", step_p95);
    json.kv("step_p99_ms", step_p99);
    json.kv("pipelined_p50_ms", piped_p50);
    json.kv("pipelined_p95_ms", piped_p95);
    json.kv("pipelined_p99_ms", piped_p99);
    json.kv("pipelined_window_ms", piped_window_ms);
    json.kv("delta_skips", delta_skips);
    json.kv("bitwise_ok", bitwise_ok ? 1 : 0);
    json.end_object();
    json.end_object();
    json.write_file(json_path);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return bitwise_ok ? 0 : 1;
}
