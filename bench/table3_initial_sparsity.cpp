// Table III: effect of the initial sparsity theta_i on final accuracy
// for fixed targets theta_f in {0.95, 0.98}.
//
// Paper finding: the accuracy gap across theta_i in {0.5 .. 0.9} is small
// (~1-2%), so a high theta_i (cheap training) costs little accuracy.
#include <cstdio>
#include <vector>

#include "core/experiment.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  ndsnn::util::set_log_level(ndsnn::util::LogLevel::kWarn);
  const ndsnn::util::Cli cli(argc, argv);
  const bool full = cli.has_flag("--full");
  const std::string arch = cli.get_string("--arch", "lenet5");
  const int64_t epochs = cli.get_int("--epochs", 12);
  const int64_t samples = cli.get_int("--samples", full ? 768 : 384);

  const std::vector<double> targets = {0.95, 0.98};
  const std::vector<double> initials = {0.9, 0.8, 0.7, 0.6, 0.5};

  std::printf("=== Table III: initial-sparsity ablation (%s, synthetic CIFAR-10) ===\n",
              arch.c_str());
  std::printf("paper: accuracy gap across theta_i is ~1-2%%; higher theta_i\n");
  std::printf("means higher mean training sparsity (cheaper training).\n\n");

  ndsnn::util::Table table(
      {"target", "initial", "best acc %", "mean density", "final sparsity"});
  for (const double tf : targets) {
    double min_acc = 1e9, max_acc = -1e9;
    for (const double ti : initials) {
      ndsnn::core::ExperimentConfig cfg;
      cfg.arch = arch;
      cfg.dataset = "cifar10";
      cfg.method = "ndsnn";
      cfg.sparsity = tf;
      cfg.initial_sparsity = ti;
      cfg.epochs = epochs;
      cfg.train_samples = samples;
      cfg.test_samples = samples / 2;
      cfg.model_scale = arch == "lenet5" ? 2.0 : 0.1;
      cfg.data_scale = 0.5;
      cfg.timesteps = 2;
      cfg.learning_rate = 0.2;
      const auto r = ndsnn::core::run_experiment(cfg);
      min_acc = std::min(min_acc, r.best_acc_at_final_sparsity);
      max_acc = std::max(max_acc, r.best_acc_at_final_sparsity);
      table.add_row({ndsnn::util::fmt(tf), ndsnn::util::fmt(ti),
                     ndsnn::util::fmt(r.best_acc_at_final_sparsity),
                     ndsnn::util::fmt(ndsnn::core::mean_density(r), 3),
                     ndsnn::util::fmt(r.final_sparsity, 3)});
    }
    std::printf("target %.2f: accuracy spread across initial sparsities = %.2f%%\n", tf,
                max_acc - min_acc);
  }
  std::printf("\n");
  table.print();
  return 0;
}
