// Fig. 4: NDSNN vs LTH at the smaller timestep T=2 across sparsities.
//
// Paper: with T=2 (cheaper BPTT), NDSNN beats LTH at every sparsity, by
// the widest margin at 99%.
#include <cstdio>
#include <vector>

#include "core/experiment.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  ndsnn::util::set_log_level(ndsnn::util::LogLevel::kWarn);
  const ndsnn::util::Cli cli(argc, argv);
  const bool full = cli.has_flag("--full");
  const std::string arch = cli.get_string("--arch", "lenet5");
  const int64_t epochs = cli.get_int("--epochs", 12);
  const int64_t samples = cli.get_int("--samples", full ? 768 : 384);

  const std::vector<double> sparsities = {0.90, 0.95, 0.98, 0.99};

  std::printf("=== Fig. 4: NDSNN vs LTH at timestep T=2 (%s, synthetic CIFAR-10) ===\n\n",
              arch.c_str());

  ndsnn::util::Table table({"sparsity", "LTH-SNN (T=2)", "NDSNN (T=2)", "delta"});
  int ndsnn_wins = 0;
  for (const double s : sparsities) {
    double acc[2] = {0.0, 0.0};
    int slot = 0;
    for (const char* method : {"lth", "ndsnn"}) {
      ndsnn::core::ExperimentConfig cfg;
      cfg.arch = arch;
      cfg.dataset = "cifar10";
      cfg.method = method;
      cfg.sparsity = s;
      cfg.timesteps = 2;  // the Fig. 4 regime
      cfg.epochs = epochs;
      cfg.train_samples = samples;
      cfg.test_samples = samples / 2;
      cfg.model_scale = arch == "lenet5" ? 2.0 : 0.1;
      cfg.data_scale = 0.5;
      cfg.learning_rate = 0.2;
      acc[slot++] = ndsnn::core::run_experiment(cfg).best_acc_at_final_sparsity;
    }
    ndsnn_wins += acc[1] >= acc[0];
    table.add_row({ndsnn::util::fmt(100.0 * s, 0) + "%", ndsnn::util::fmt(acc[0]),
                   ndsnn::util::fmt(acc[1]), ndsnn::util::fmt(acc[1] - acc[0])});
  }
  table.print();
  std::printf("\nshape: NDSNN wins at %d/4 sparsities (paper: 4/4; CIFAR-100 deltas\n",
              ndsnn_wins);
  std::printf("reach +5.55 VGG-16 / +13.34 ResNet-19 at 99%%).\n");
  return 0;
}
