// Dense-vs-sparse inference at the paper's sparsity points (0.5-0.99).
//
// Builds a zoo model, masks its weights at each target sparsity, compiles
// a dense plan (force_dense) and a CSR plan, and reports single-thread
// latency/throughput plus the speedup the compiled sparsity buys.
// Further sections cover structured (BCSR) kernels, the quantised-value
// planes — the Sec. III-D 8/4-bit storage claim paired with measured
// throughput and bytes-touched numbers, both at the kernel level (fp32
// vs int8/int4 CSR spmm_t on the lenet5 fc1-scale layer) and end to end
// (whole plans per precision) — and a BatchExecutor thread-pool sweep.
//
//   ./bench/sparse_inference [--arch lenet5] [--batch 8] [--timesteps 2]
//                            [--repeats 5] [--threads 4] [--json out.json]
//
// --json additionally writes every table as one machine-readable JSON
// document (the schema CI uploads as an artifact and the checked-in
// BENCH_sparse_inference.json snapshot records). New in PR 5: a
// threads x kernel sweep (row-partitioned CSR spmm/spmm_t through the
// shared util::ThreadPool) and a threads x coalescing executor sweep
// under 64 concurrent single-sample requests. New in PR 6: an
// op_breakdown section (PlanProfile per-op mean/p50/p95 latency, runs,
// observed firing rate, and share of plan time on the 0.95 auto plan). Thread speedups are only
// meaningful on a multi-core box (the checked-in snapshot was refreshed
// on a 1-core container, where they sit at ~1x by construction; the CI
// runners report the real numbers).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/nm_projection.hpp"
#include "nn/models/zoo.hpp"
#include "runtime/autotune.hpp"
#include "runtime/batch_executor.hpp"
#include "runtime/compiled_network.hpp"
#include "runtime/trace.hpp"
#include "sparse/csr.hpp"
#include "sparse/mask.hpp"
#include "sparse/quant.hpp"
#include "sparse/structured.hpp"
#include "tensor/random.hpp"
#include "util/cli.hpp"
#include "util/cpuinfo.hpp"
#include "util/json.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using ndsnn::runtime::BatchExecutor;
using ndsnn::runtime::CompiledNetwork;
using ndsnn::runtime::CompileOptions;
using ndsnn::tensor::Rng;
using ndsnn::tensor::Shape;
using ndsnn::tensor::Tensor;

void mask_network(ndsnn::nn::SpikingNetwork& net, double sparsity, uint64_t seed) {
  Rng rng(seed);
  for (const auto& p : net.params()) {
    if (!p.prunable) continue;
    const auto active = static_cast<int64_t>(
        static_cast<double>(p.value->numel()) * (1.0 - sparsity));
    const ndsnn::sparse::Mask mask(p.value->shape(), active, rng);
    mask.apply(*p.value);
  }
}

/// Min over three averaged passes: a preempted pass only ever reads
/// high, so the min is the stable statistic on a shared box (same
/// rationale as the kernel-tier section's min_ms).
double time_plan(const CompiledNetwork& plan, const Tensor& batch, int repeats) {
  (void)plan.run(batch);  // warm-up
  double best = 1e30;
  for (int pass = 0; pass < 3; ++pass) {
    const ndsnn::util::Stopwatch sw;
    for (int r = 0; r < repeats; ++r) (void)plan.run(batch);
    best = std::min(best, sw.millis() / repeats);
  }
  return best;
}

double time_interpreted(ndsnn::nn::SpikingNetwork& net, const Tensor& batch, int repeats) {
  (void)net.predict(batch);  // warm-up
  double best = 1e30;
  for (int pass = 0; pass < 3; ++pass) {
    const ndsnn::util::Stopwatch sw;
    for (int r = 0; r < repeats; ++r) (void)net.predict(batch);
    best = std::min(best, sw.millis() / repeats);
  }
  return best;
}

/// Zero random 4x4 blocks of every prunable weight's lowered 2-D form,
/// keeping `keep` of them — the row-block pattern of FPGA SNN
/// accelerators (SyncNN-style), the best case for BCSR.
void block_mask_network(ndsnn::nn::SpikingNetwork& net, double keep, uint64_t seed) {
  Rng rng(seed);
  for (const auto& p : net.params()) {
    if (!p.prunable) continue;
    const int64_t rows = p.value->dim(0);
    const int64_t cols = p.value->numel() / rows;
    float* w = p.value->data();
    for (int64_t rb = 0; rb < rows; rb += 4) {
      for (int64_t cb = 0; cb < cols; cb += 4) {
        if (rng.uniform01() < keep) continue;
        for (int64_t r = rb; r < std::min(rb + 4, rows); ++r) {
          for (int64_t c = cb; c < std::min(cb + 4, cols); ++c) w[r * cols + c] = 0.0F;
        }
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const ndsnn::util::Cli cli(argc, argv);
  const std::string arch = cli.get_string("--arch", "lenet5");
  const int batch_size = cli.get_int("--batch", 8);
  const int timesteps = cli.get_int("--timesteps", 2);
  const int repeats = cli.get_int("--repeats", 5);
  const int threads = cli.get_int("--threads", 4);
  const std::string json_path = cli.get_string("--json", "");

  ndsnn::nn::ModelSpec spec;
  spec.timesteps = timesteps;
  if (arch == "vgg16" || arch == "resnet19") spec.width_scale = 0.25;

  Rng rng(123);
  Tensor batch(Shape{batch_size, spec.in_channels, spec.image_size, spec.image_size});
  batch.fill_uniform(rng, 0.0F, 1.0F);

  ndsnn::util::JsonWriter json;
  json.begin_object();
  json.kv("bench", "sparse_inference");
  json.kv("arch", arch);
  json.kv("batch", batch_size);
  json.kv("timesteps", timesteps);
  json.kv("repeats", repeats);
  // Thread-scaling gates only mean anything on a multi-core runner;
  // record what this box actually had so the checker can tell.
  json.kv("cores", static_cast<int64_t>(std::thread::hardware_concurrency()));

  std::printf("sparse inference runtime: %s, batch=%d, T=%d, single thread\n\n",
              arch.c_str(), batch_size, timesteps);

  // "dense path" = SpikingNetwork::predict, the interpreted dense forward
  // the repo used for every eval before this runtime existed. The
  // compiled-dense column isolates what compilation alone buys (no BPTT
  // bookkeeping); the CSR column adds the sparse weight kernels with
  // dense activations; the +event column lets the activation heuristic
  // (kAuto, planning on the fallback firing-rate estimate — these nets
  // are untrained) route spike-valued inputs through the gather kernels
  // on top. See bench/activation_sparsity for the controlled firing-rate
  // sweep behind the event crossover.
  ndsnn::util::Table table({"sparsity", "plan nnz", "dense path ms", "compiled dense ms",
                            "compiled csr ms", "csr+event ms", "speedup", "samples/s"});
  double speedup_at_95 = 0.0;
  json.key("sparsity_sweep").begin_array();
  for (const double sparsity : {0.5, 0.8, 0.9, 0.95, 0.99}) {
    const auto net = ndsnn::nn::make_model(arch, spec);
    mask_network(*net, sparsity, 7);

    CompileOptions dense_opts;
    dense_opts.force_dense = true;
    dense_opts.activation_mode = ndsnn::runtime::ActivationMode::kDense;
    const CompiledNetwork dense_plan = CompiledNetwork::compile(*net, dense_opts);
    CompileOptions csr_opts;
    csr_opts.activation_mode = ndsnn::runtime::ActivationMode::kDense;
    const CompiledNetwork sparse_plan = CompiledNetwork::compile(*net, csr_opts);
    const CompiledNetwork event_plan = CompiledNetwork::compile(*net);  // kAuto x kAuto

    const double interp_ms = time_interpreted(*net, batch, repeats);
    const double dense_ms = time_plan(dense_plan, batch, repeats);
    const double sparse_ms = time_plan(sparse_plan, batch, repeats);
    const double event_ms = time_plan(event_plan, batch, repeats);
    const double best_ms = std::min(sparse_ms, event_ms);
    const double speedup = interp_ms / best_ms;
    if (sparsity == 0.95) speedup_at_95 = speedup;
    table.add_row({ndsnn::util::fmt(sparsity, 2), std::to_string(sparse_plan.stored_weights()),
                   ndsnn::util::fmt(interp_ms, 2), ndsnn::util::fmt(dense_ms, 2),
                   ndsnn::util::fmt(sparse_ms, 2), ndsnn::util::fmt(event_ms, 2),
                   ndsnn::util::fmt(speedup, 2) + "x",
                   ndsnn::util::fmt(1e3 * batch_size / best_ms, 0)});
    json.begin_object();
    json.kv("sparsity", sparsity);
    json.kv("plan_nnz", sparse_plan.stored_weights());
    json.kv("interpreted_ms", interp_ms);
    json.kv("compiled_dense_ms", dense_ms);
    json.kv("compiled_csr_ms", sparse_ms);
    json.kv("csr_event_ms", event_ms);
    json.kv("speedup", speedup);
    json.kv("samples_per_s", 1e3 * batch_size / best_ms);
    json.end_object();
  }
  json.end_array();
  table.print();
  std::printf("\nspeedup over the dense path at 0.95 sparsity: %.2fx %s\n", speedup_at_95,
              speedup_at_95 >= 2.0 ? "(>= 2x target met)" : "(below 2x target!)");
  json.kv("speedup_at_095", speedup_at_95);

  // Structured sparsity: the same network projected/masked onto the
  // hardware-friendly patterns of Sec. III-D, executed with the
  // element-wise CSR kernels vs the block-CSR kernels (forced backends,
  // so the comparison isolates the kernel and not the heuristic). The
  // auto column shows what the measured-occupancy heuristic actually
  // picks per layer: after the PR-5 recalibration it routes N:M
  // patterns (~0.5 occupancy, where BCSR measured 0.78x/0.65x) to CSR
  // and only genuinely blocky masks to BCSR, so auto should track the
  // better of the two forced columns.
  std::printf("\nstructured patterns, CSR vs BCSR kernels (4x4 blocks):\n");
  ndsnn::util::Table structured({"pattern", "sparsity", "csr ms", "bcsr ms", "auto ms",
                                 "bcsr speedup", "bcsr samples/s"});
  json.key("structured").begin_array();
  for (const std::string pattern : {"2:4", "1:4", "blk4x4"}) {
    const auto net = ndsnn::nn::make_model(arch, spec);
    double sparsity = 0.0;
    if (pattern == "blk4x4") {
      block_mask_network(*net, /*keep=*/0.25, 7);
    } else {
      const auto report =
          ndsnn::core::project_network_nm(*net, ndsnn::sparse::parse_nm(pattern));
      sparsity = ndsnn::sparse::nm_sparsity(ndsnn::sparse::parse_nm(pattern));
      (void)report;
    }

    // Dense activations on both plans: the comparison isolates the
    // weight kernel, not the activation heuristic.
    ndsnn::runtime::CompileOptions csr_opts;
    csr_opts.backend = ndsnn::runtime::Backend::kCsr;
    csr_opts.activation_mode = ndsnn::runtime::ActivationMode::kDense;
    ndsnn::runtime::CompileOptions bcsr_opts;
    bcsr_opts.backend = ndsnn::runtime::Backend::kBcsr;
    bcsr_opts.activation_mode = ndsnn::runtime::ActivationMode::kDense;
    ndsnn::runtime::CompileOptions auto_opts;
    auto_opts.activation_mode = ndsnn::runtime::ActivationMode::kDense;
    const CompiledNetwork csr_plan = CompiledNetwork::compile(*net, csr_opts);
    const CompiledNetwork bcsr_plan = CompiledNetwork::compile(*net, bcsr_opts);
    const CompiledNetwork auto_plan = CompiledNetwork::compile(*net, auto_opts);
    if (pattern == "blk4x4") sparsity = csr_plan.overall_sparsity();

    const double csr_ms = time_plan(csr_plan, batch, repeats);
    const double bcsr_ms = time_plan(bcsr_plan, batch, repeats);
    const double auto_ms = time_plan(auto_plan, batch, repeats);
    structured.add_row({pattern, ndsnn::util::fmt(sparsity, 2), ndsnn::util::fmt(csr_ms, 2),
                        ndsnn::util::fmt(bcsr_ms, 2), ndsnn::util::fmt(auto_ms, 2),
                        ndsnn::util::fmt(csr_ms / bcsr_ms, 2) + "x",
                        ndsnn::util::fmt(1e3 * batch_size / bcsr_ms, 0)});
    json.begin_object();
    json.kv("pattern", pattern);
    json.kv("sparsity", sparsity);
    json.kv("csr_ms", csr_ms);
    json.kv("bcsr_ms", bcsr_ms);
    json.kv("auto_ms", auto_ms);
    json.kv("bcsr_speedup", csr_ms / bcsr_ms);
    json.end_object();
  }
  json.end_array();
  structured.print();

  // Quantised value planes, kernel level: the fc1-scale layer
  // ([120 x 400], He-init magnitudes, 0.9 sparsity) under the
  // dense-activation CSR spmm_t — the exact kernel runtime::LinearOp
  // runs — with fp32 vs int8 vs packed-int4 storage. Spike-valued input
  // at a 10% rate (the regime the documented 1e-2/5e-2 error tolerances
  // are stated for); error columns are against the fp32 kernel.
  // This is the Sec. III-D storage accounting finally paired with
  // measured throughput and bytes touched.
  std::printf("\nquantised CSR kernels, lenet5 fc1-scale [120 x 400] at 0.9 sparsity:\n");
  {
    Rng qrng(20260728ULL);
    Tensor w(Shape{120, 400});
    w.fill_uniform(qrng, -0.12F, 0.12F);
    for (int64_t i = 0; i < w.numel(); ++i) {
      if (qrng.uniform01() < 0.9) w.at(i) = 0.0F;
    }
    Tensor x(Shape{256, 400});
    for (int64_t i = 0; i < x.numel(); ++i) {
      if (qrng.uniform01() < 0.10) x.at(i) = 1.0F;
    }
    const ndsnn::sparse::Csr fp32 = ndsnn::sparse::Csr::from_dense(w);
    const Tensor want = fp32.spmm_t(x);
    const int kernel_repeats = std::max(repeats * 20, 40);

    ndsnn::util::Table quant_table(
        {"precision", "spmm_t ms", "weight bytes", "speedup", "max abs err"});
    double int8_speedup = 0.0;
    double fp32_ms = 0.0;
    json.key("quant_kernel").begin_object();
    json.kv("rows", static_cast<int64_t>(256));
    json.kv("out", static_cast<int64_t>(120));
    json.kv("in", static_cast<int64_t>(400));
    json.kv("weight_sparsity", 0.9);
    json.kv("firing_rate", 0.10);
    json.key("precisions").begin_array();
    for (const auto precision :
         {ndsnn::sparse::Precision::kFp32, ndsnn::sparse::Precision::kInt8,
          ndsnn::sparse::Precision::kInt4}) {
      ndsnn::sparse::Csr csr = ndsnn::sparse::Csr::from_dense(w);
      (void)csr.quantize(precision);
      (void)csr.spmm_t(x);  // warm-up
      const ndsnn::util::Stopwatch sw;
      for (int r = 0; r < kernel_repeats; ++r) (void)csr.spmm_t(x);
      const double ms = sw.millis() / kernel_repeats;
      const Tensor got = csr.spmm_t(x);
      double err = 0.0;
      for (int64_t i = 0; i < want.numel(); ++i) {
        err = std::max(err, static_cast<double>(std::fabs(got.at(i) - want.at(i))));
      }
      if (precision == ndsnn::sparse::Precision::kFp32) fp32_ms = ms;
      const double speedup = fp32_ms / ms;
      if (precision == ndsnn::sparse::Precision::kInt8) int8_speedup = speedup;
      quant_table.add_row({ndsnn::sparse::precision_tag(precision), ndsnn::util::fmt(ms, 3),
                           std::to_string(csr.memory_bytes()),
                           ndsnn::util::fmt(speedup, 2) + "x",
                           ndsnn::util::fmt(err, 4)});
      json.begin_object();
      json.kv("precision", ndsnn::sparse::precision_tag(precision));
      json.kv("spmm_t_ms", ms);
      json.kv("weight_bytes", csr.memory_bytes());
      json.kv("speedup", speedup);
      json.kv("max_abs_err", err);
      json.end_object();
    }
    json.end_array();
    quant_table.print();
    std::printf("int8 over fp32 CSR spmm_t at 0.9 sparsity: %.2fx %s\n", int8_speedup,
                int8_speedup >= 1.3 ? "(>= 1.3x target met)" : "(below 1.3x target!)");
    json.kv("int8_speedup", int8_speedup);
    json.end_object();
  }

  // SIMD kernel tiers: the same fc1-scale layer through every tier this
  // box can execute — the scalar reference, the gcc-vector-extension
  // baseline, and the hand-written AVX2 kernels — per precision, for
  // both GEMM orientations the runtime dispatches (spmm_t is what
  // LinearOp runs, spmm what ConvOp runs). Timing is min-of-repeats:
  // the minimum over individually-timed calls is the least noisy
  // location statistic on a shared box, and it is what
  // tools/check_bench_regression.py gates on. AVX2 columns only exist
  // when the box actually detected avx2 (a forced request would clamp
  // to the vector tier and silently measure the wrong kernel).
  std::printf("\nkernel tiers, lenet5 fc1-scale [120 x 400] at 0.9 sparsity:\n");
  {
    namespace simd = ndsnn::util::simd;
    const bool has_avx2 = simd::detected() >= simd::Tier::kAvx2;
    Rng krng(20260728ULL);
    Tensor w(Shape{120, 400});
    w.fill_uniform(krng, -0.12F, 0.12F);
    for (int64_t i = 0; i < w.numel(); ++i) {
      if (krng.uniform01() < 0.9) w.at(i) = 0.0F;
    }
    Tensor bT(Shape{256, 400});  // spmm_t operand (batch-major activations)
    bT.fill_uniform(krng, 0.0F, 1.0F);
    Tensor bN(Shape{400, 256});  // spmm operand (im2col patch matrix)
    bN.fill_uniform(krng, 0.0F, 1.0F);
    const int kernel_repeats = std::max(repeats * 20, 40);

    // Min of individually-timed calls after two warm-up calls.
    const auto min_ms = [&](auto&& call) {
      call();
      call();
      double best = 1e300;
      for (int r = 0; r < kernel_repeats; ++r) {
        const ndsnn::util::Stopwatch sw;
        call();
        best = std::min(best, sw.millis());
      }
      return best;
    };

    ndsnn::util::Table tiers_table({"kernel", "precision", "scalar ms", "vector ms",
                                    "avx2 ms", "avx2 speedup"});
    double avx2_fp32_spmm_t_speedup = has_avx2 ? 0.0 : -1.0;
    json.key("kernel_tiers").begin_object();
    json.kv("detected", simd::name(simd::detected()));
    json.kv("rows", static_cast<int64_t>(256));
    json.kv("out", static_cast<int64_t>(120));
    json.kv("in", static_cast<int64_t>(400));
    json.kv("weight_sparsity", 0.9);
    json.key("kernels").begin_array();
    for (const bool transposed : {true, false}) {
      for (const auto precision :
           {ndsnn::sparse::Precision::kFp32, ndsnn::sparse::Precision::kInt8,
            ndsnn::sparse::Precision::kInt4}) {
        ndsnn::sparse::Csr csr = ndsnn::sparse::Csr::from_dense(w);
        if (precision != ndsnn::sparse::Precision::kFp32) (void)csr.quantize(precision);
        const auto run_tier = [&](simd::Tier tier) {
          return min_ms([&] {
            Tensor c = transposed ? csr.spmm_t(bT, nullptr, tier)
                                  : csr.spmm(bN, nullptr, tier);
            (void)c;
          });
        };
        const double scalar_ms = run_tier(simd::Tier::kScalar);
        const double vector_ms = run_tier(simd::Tier::kVector);
        const double avx2_ms = has_avx2 ? run_tier(simd::Tier::kAvx2) : -1.0;
        const double avx2_speedup = has_avx2 ? vector_ms / avx2_ms : -1.0;
        const char* kname = transposed ? "spmm_t" : "spmm";
        if (transposed && precision == ndsnn::sparse::Precision::kFp32) {
          avx2_fp32_spmm_t_speedup = avx2_speedup;
        }
        tiers_table.add_row(
            {kname, ndsnn::sparse::precision_tag(precision),
             ndsnn::util::fmt(scalar_ms, 3), ndsnn::util::fmt(vector_ms, 3),
             has_avx2 ? ndsnn::util::fmt(avx2_ms, 3) : "-",
             has_avx2 ? ndsnn::util::fmt(avx2_speedup, 2) + "x" : "-"});
        json.begin_object();
        json.kv("kernel", kname);
        json.kv("precision", ndsnn::sparse::precision_tag(precision));
        json.kv("scalar_ms", scalar_ms);
        json.kv("vector_ms", vector_ms);
        json.kv("avx2_ms", avx2_ms);
        json.kv("avx2_speedup", avx2_speedup);
        json.end_object();
      }
    }
    json.end_array();
    json.kv("avx2_fp32_spmm_t_speedup", avx2_fp32_spmm_t_speedup);
    json.end_object();
    tiers_table.print();
    if (has_avx2) {
      std::printf("avx2 over vector fp32 spmm_t: %.2fx %s\n", avx2_fp32_spmm_t_speedup,
                  avx2_fp32_spmm_t_speedup >= 1.5 ? "(>= 1.5x target met)"
                                                  : "(below 1.5x target!)");
    } else {
      std::printf("no avx2 on this box; tier gate is informational\n");
    }
  }

  // Autotuned lowering: the measured {backend, block, tier} pick vs the
  // heuristic plan on the 0.9-sparsity network, plus the cache effect
  // on recompilation (the second compile should be decided from cache).
  std::printf("\nautotuned compile at 0.9 sparsity:\n");
  {
    const auto net = ndsnn::nn::make_model(arch, spec);
    mask_network(*net, 0.9, 7);
    ndsnn::runtime::autotune_cache_clear();
    ndsnn::runtime::CompileOptions tuned_opts;
    tuned_opts.activation_mode = ndsnn::runtime::ActivationMode::kDense;
    tuned_opts.autotune = true;
    const ndsnn::util::Stopwatch cold_sw;
    const CompiledNetwork tuned = CompiledNetwork::compile(*net, tuned_opts);
    const double cold_compile_ms = cold_sw.millis();
    const ndsnn::util::Stopwatch warm_sw;
    const CompiledNetwork tuned2 = CompiledNetwork::compile(*net, tuned_opts);
    const double warm_compile_ms = warm_sw.millis();
    (void)tuned2;
    ndsnn::runtime::CompileOptions heur_opts;
    heur_opts.activation_mode = ndsnn::runtime::ActivationMode::kDense;
    const CompiledNetwork heuristic = CompiledNetwork::compile(*net, heur_opts);
    const double tuned_ms = time_plan(tuned, batch, repeats);
    const double heur_ms = time_plan(heuristic, batch, repeats);
    const auto stats = ndsnn::runtime::autotune_cache_stats();
    std::printf(
        "  heuristic %.2f ms, autotuned %.2f ms (%.2fx); compile cold %.1f ms, "
        "warm %.1f ms (%.0fx); cache %lld hits / %lld misses\n",
        heur_ms, tuned_ms, heur_ms / tuned_ms, cold_compile_ms, warm_compile_ms,
        cold_compile_ms / std::max(warm_compile_ms, 1e-6),
        static_cast<long long>(stats.hits), static_cast<long long>(stats.misses));
    json.key("autotune").begin_object();
    json.kv("heuristic_ms", heur_ms);
    json.kv("autotuned_ms", tuned_ms);
    json.kv("autotune_speedup", heur_ms / tuned_ms);
    json.kv("compile_cold_ms", cold_compile_ms);
    json.kv("compile_warm_ms", warm_compile_ms);
    json.kv("cache_hits", stats.hits);
    json.kv("cache_misses", stats.misses);
    json.end_object();
  }

  // Quantised value planes, end to end: the same masked network
  // compiled at each precision (forced CSR x dense activations so the
  // comparison isolates the value plane).
  std::printf("\nquantised plans end to end (0.9 sparsity, forced CSR):\n");
  {
    const auto net = ndsnn::nn::make_model(arch, spec);
    mask_network(*net, 0.9, 7);
    ndsnn::util::Table plans_table(
        {"precision", "ms/batch", "stored bytes", "speedup", "samples/s"});
    double fp32_ms = 0.0;
    json.key("precision_plans").begin_array();
    for (const auto precision :
         {ndsnn::runtime::WeightPrecision::kFp32, ndsnn::runtime::WeightPrecision::kInt8,
          ndsnn::runtime::WeightPrecision::kInt4}) {
      ndsnn::runtime::CompileOptions opts;
      opts.backend = ndsnn::runtime::Backend::kCsr;
      opts.activation_mode = ndsnn::runtime::ActivationMode::kDense;
      opts.weight_precision = precision;
      const CompiledNetwork plan = CompiledNetwork::compile(*net, opts);
      const double ms = time_plan(plan, batch, repeats);
      if (precision == ndsnn::runtime::WeightPrecision::kFp32) fp32_ms = ms;
      plans_table.add_row({ndsnn::runtime::weight_precision_name(precision),
                           ndsnn::util::fmt(ms, 2), std::to_string(plan.stored_bytes()),
                           ndsnn::util::fmt(fp32_ms / ms, 2) + "x",
                           ndsnn::util::fmt(1e3 * batch_size / ms, 0)});
      json.begin_object();
      json.kv("precision", ndsnn::runtime::weight_precision_name(precision));
      json.kv("ms", ms);
      json.kv("stored_bytes", plan.stored_bytes());
      json.kv("speedup", fp32_ms / ms);
      json.end_object();
    }
    json.end_array();
    plans_table.print();
  }

  // Intra-op kernel threading: the lenet5 fc1-scale layer ([120 x 400],
  // 0.9 sparsity) through the row-partitioned CSR kernels at 1/2/4/8
  // pool lanes. spmm streams B [400, n]; spmm_t gathers x [m, 400] —
  // the exact kernels ConvOp/LinearOp dispatch through the plan's
  // shared pool, nnz-balanced over row_ptr prefix sums.
  std::printf("\nthreaded CSR kernels, lenet5 fc1-scale [120 x 400] at 0.9 sparsity:\n");
  double spmm_speedup_4t = 0.0;
  {
    Rng trng(20260728ULL);
    Tensor w(Shape{120, 400});
    w.fill_uniform(trng, -0.12F, 0.12F);
    for (int64_t i = 0; i < w.numel(); ++i) {
      if (trng.uniform01() < 0.9) w.at(i) = 0.0F;
    }
    Tensor bN(Shape{400, 256});  // spmm operand
    bN.fill_uniform(trng, 0.0F, 1.0F);
    Tensor bT(Shape{256, 400});  // spmm_t operand
    bT.fill_uniform(trng, 0.0F, 1.0F);
    const ndsnn::sparse::Csr csr = ndsnn::sparse::Csr::from_dense(w);
    const int kernel_repeats = std::max(repeats * 20, 40);

    ndsnn::util::Table tk({"threads", "spmm ms", "spmm speedup", "spmm_t ms",
                           "spmm_t speedup"});
    double spmm_1t = 0.0, spmm_t_1t = 0.0;
    json.key("threads_kernel").begin_object();
    json.kv("out", static_cast<int64_t>(120));
    json.kv("in", static_cast<int64_t>(400));
    json.kv("batch_cols", static_cast<int64_t>(256));
    json.kv("weight_sparsity", 0.9);
    json.key("lanes").begin_array();
    for (const int n : {1, 2, 4, 8}) {
      std::unique_ptr<ndsnn::util::ThreadPool> pool;
      if (n > 1) pool = std::make_unique<ndsnn::util::ThreadPool>(n);
      (void)csr.spmm(bN, pool.get());  // warm-up
      const ndsnn::util::Stopwatch sw_n;
      for (int r = 0; r < kernel_repeats; ++r) (void)csr.spmm(bN, pool.get());
      const double spmm_ms = sw_n.millis() / kernel_repeats;
      (void)csr.spmm_t(bT, pool.get());
      const ndsnn::util::Stopwatch sw_t;
      for (int r = 0; r < kernel_repeats; ++r) (void)csr.spmm_t(bT, pool.get());
      const double spmm_t_ms = sw_t.millis() / kernel_repeats;
      if (n == 1) {
        spmm_1t = spmm_ms;
        spmm_t_1t = spmm_t_ms;
      }
      if (n == 4) spmm_speedup_4t = spmm_1t / spmm_ms;
      tk.add_row({std::to_string(n), ndsnn::util::fmt(spmm_ms, 3),
                  ndsnn::util::fmt(spmm_1t / spmm_ms, 2) + "x",
                  ndsnn::util::fmt(spmm_t_ms, 3),
                  ndsnn::util::fmt(spmm_t_1t / spmm_t_ms, 2) + "x"});
      json.begin_object();
      json.kv("threads", n);
      json.kv("spmm_ms", spmm_ms);
      json.kv("spmm_speedup", spmm_1t / spmm_ms);
      json.kv("spmm_t_ms", spmm_t_ms);
      json.kv("spmm_t_speedup", spmm_t_1t / spmm_t_ms);
      json.end_object();
    }
    json.end_array();
    tk.print();
    std::printf("spmm at 4 threads vs 1: %.2fx %s\n", spmm_speedup_4t,
                spmm_speedup_4t >= 3.0
                    ? "(>= 3x target met)"
                    : "(below 3x target - meaningful only on a >= 4-core box)");
    json.kv("spmm_speedup_4t", spmm_speedup_4t);
    json.end_object();
  }

  // Serving throughput: shard independent requests across a worker pool.
  // 32 requests per thread, not 4: nearest-rank p95 and p99 over 16
  // requests are the same sample, so the old snapshot's p99 column was
  // a copy of p95. At >= 32 the two ranks separate.
  std::printf("\nbatch executor throughput at 0.95 sparsity (%d requests):\n", 32 * threads);
  const auto net = ndsnn::nn::make_model(arch, spec);
  mask_network(*net, 0.95, 7);
  const CompiledNetwork plan = CompiledNetwork::compile(*net);
  const std::vector<Tensor> requests(static_cast<std::size_t>(32 * threads), batch);

  ndsnn::util::Table serve(
      {"threads", "total ms", "requests/s", "samples/s", "p50 ms", "p95 ms", "p99 ms"});
  json.key("executor").begin_array();
  for (int n = 1; n <= threads; n *= 2) {
    BatchExecutor exec(plan, n);
    const ndsnn::util::Stopwatch sw;
    (void)exec.run_all(requests);
    const double ms = sw.millis();
    const double reqs = static_cast<double>(requests.size());
    const ndsnn::runtime::ExecutorStats stats = exec.stats();
    serve.add_row({std::to_string(n), ndsnn::util::fmt(ms, 1),
                   ndsnn::util::fmt(1e3 * reqs / ms, 1),
                   ndsnn::util::fmt(1e3 * reqs * batch_size / ms, 0),
                   ndsnn::util::fmt(stats.p50_ms, 2), ndsnn::util::fmt(stats.p95_ms, 2),
                   ndsnn::util::fmt(stats.p99_ms, 2)});
    json.begin_object();
    json.kv("threads", n);
    json.kv("total_ms", ms);
    json.kv("requests_per_s", 1e3 * reqs / ms);
    json.kv("samples_per_s", 1e3 * reqs * batch_size / ms);
    json.kv("p50_ms", stats.p50_ms);
    json.kv("p95_ms", stats.p95_ms);
    json.kv("p99_ms", stats.p99_ms);
    json.end_object();
  }
  json.end_array();
  serve.print();

  // Adaptive coalescing under many concurrent *single-sample* requests:
  // the worst case for per-run fixed costs. The executor fuses queued
  // requests into one time-major pass (bitwise identical to solo runs),
  // so throughput approaches the batched rate. The coalescing rows use
  // a plan compiled with num_threads = 0 (hardware concurrency: fused
  // passes get the machine's real lanes, a 1-core box stays serial) and
  // a total budget of --threads, so inter-request vs intra-op splitting
  // is exercised too; intra_lanes in the JSON records what the plan
  // actually got.
  const int single_requests = 64;
  std::printf(
      "\nrequest coalescing, %d concurrent single-sample requests at 0.95 sparsity:\n",
      single_requests);
  {
    ndsnn::runtime::CompileOptions pooled_opts;
    // 0 = hardware concurrency: fused passes use the machine's real
    // lanes (on a 1-core box the plan stays serial instead of
    // oversubscribing, and the comparison measures pure batching).
    pooled_opts.num_threads = 0;
    const CompiledNetwork pooled_plan = CompiledNetwork::compile(*net, pooled_opts);
    std::vector<Tensor> singles;
    Rng srng(987);
    for (int r = 0; r < single_requests; ++r) {
      Tensor one(Shape{1, spec.in_channels, spec.image_size, spec.image_size});
      one.fill_uniform(srng, 0.0F, 1.0F);
      singles.push_back(std::move(one));
    }
    ndsnn::util::Table co({"threads", "coalesce", "total ms", "samples/s", "p50 ms",
                           "p95 ms", "fused"});
    double base_sps = 0.0, coalesce_speedup = 0.0;
    json.key("coalescing").begin_array();
    for (const bool coalesce : {false, true}) {
      ndsnn::runtime::ExecutorOptions eopts;
      if (coalesce) {
        // Fuse to the same batch size the batched sweep above runs at:
        // that is the per-sample rate coalescing is meant to approach.
        eopts.max_coalesce = batch_size;
        eopts.max_wait_us = 200;
      }
      // Warm the plan/pool on a throwaway executor so the measured
      // executor's stats hold exactly the 64 timed requests.
      {
        BatchExecutor warm(pooled_plan, threads, eopts);
        (void)warm.submit(singles[0]).get();
      }
      BatchExecutor exec(pooled_plan, threads, eopts);
      const ndsnn::util::Stopwatch sw;
      (void)exec.run_all(singles);
      const double ms = sw.millis();
      const double sps = 1e3 * single_requests / ms;
      if (!coalesce) base_sps = sps;
      if (coalesce) coalesce_speedup = sps / base_sps;
      const ndsnn::runtime::ExecutorStats stats = exec.stats();
      co.add_row({std::to_string(threads), coalesce ? "on" : "off",
                  ndsnn::util::fmt(ms, 1), ndsnn::util::fmt(sps, 0),
                  ndsnn::util::fmt(stats.p50_ms, 2), ndsnn::util::fmt(stats.p95_ms, 2),
                  std::to_string(stats.coalesced_requests) + "/" +
                      std::to_string(stats.requests)});
      json.begin_object();
      json.kv("threads", threads);
      json.kv("intra_lanes", pooled_plan.intra_op_threads());
      json.kv("coalesce", coalesce);
      json.kv("total_ms", ms);
      json.kv("samples_per_s", sps);
      json.kv("p50_ms", stats.p50_ms);
      json.kv("p95_ms", stats.p95_ms);
      json.kv("fused_batches", stats.fused_batches);
      json.kv("coalesced_requests", stats.coalesced_requests);
      json.end_object();
    }
    json.end_array();
    co.print();
    std::printf("coalescing speedup at %d threads: %.2fx %s\n", threads, coalesce_speedup,
                coalesce_speedup >= 2.0 ? "(>= 2x target met)" : "(below 2x target!)");
    json.kv("coalesce_speedup", coalesce_speedup);
  }

  // Per-op breakdown through the PlanProfile aggregation hooks: where
  // the 0.95-sparsity auto plan actually spends its time, and the
  // firing rate each op observed (EMA; -1 = no event view and not a
  // neuron op, so no rate is measured). `share` is the op's fraction of
  // summed mean op time — plan overhead outside the ops is excluded.
  std::printf("\nper-op breakdown at 0.95 sparsity (%d timed runs):\n", repeats);
  {
    plan.enable_profiling(true);
    plan.profile_reset();
    (void)plan.run(batch);  // warm
    plan.profile_reset();
    for (int r = 0; r < repeats; ++r) (void)plan.run(batch);
    const std::vector<ndsnn::runtime::PlanProfile::OpStats> stats = plan.profile();
    plan.enable_profiling(false);
    double total_us = 0.0;
    for (const auto& s : stats) total_us += s.mean_us * static_cast<double>(s.runs);
    ndsnn::util::Table ops_table(
        {"op", "kind", "runs", "mean us", "p50 us", "p95 us", "rate", "share"});
    json.key("op_breakdown").begin_object();
    json.kv("executes", plan.profiled_executes());
    json.key("ops").begin_array();
    for (const auto& s : stats) {
      const double op_us = s.mean_us * static_cast<double>(s.runs);
      const double share = total_us > 0.0 ? op_us / total_us : 0.0;
      ops_table.add_row({s.layer, s.kind, std::to_string(s.runs),
                         ndsnn::util::fmt(s.mean_us, 1), ndsnn::util::fmt(s.p50_us, 1),
                         ndsnn::util::fmt(s.p95_us, 1),
                         s.ema_rate < 0.0 ? "-" : ndsnn::util::fmt(s.ema_rate, 3),
                         ndsnn::util::fmt(100.0 * share, 1) + "%"});
      json.begin_object();
      json.kv("layer", s.layer);
      json.kv("kind", s.kind);
      json.kv("runs", s.runs);
      json.kv("mean_us", s.mean_us);
      json.kv("p50_us", s.p50_us);
      json.kv("p95_us", s.p95_us);
      json.kv("ema_rate", s.ema_rate);
      json.kv("share", share);
      json.end_object();
    }
    json.end_array();
    json.end_object();
    ops_table.print();
  }
  json.end_object();
  if (!json_path.empty()) {
    json.write_file(json_path);
    std::printf("\nwrote bench JSON to %s\n", json_path.c_str());
  }
  return 0;
}
