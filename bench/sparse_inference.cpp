// Dense-vs-sparse inference at the paper's sparsity points (0.5-0.99).
//
// Builds a zoo model, masks its weights at each target sparsity, compiles
// a dense plan (force_dense) and a CSR plan, and reports single-thread
// latency/throughput plus the speedup the compiled sparsity buys. A
// second section shards requests over a BatchExecutor thread pool.
//
//   ./bench/sparse_inference [--arch lenet5] [--batch 8] [--timesteps 2]
//                            [--repeats 5] [--threads 4]
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/nm_projection.hpp"
#include "nn/models/zoo.hpp"
#include "runtime/batch_executor.hpp"
#include "runtime/compiled_network.hpp"
#include "sparse/mask.hpp"
#include "sparse/structured.hpp"
#include "tensor/random.hpp"
#include "util/cli.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

using ndsnn::runtime::BatchExecutor;
using ndsnn::runtime::CompiledNetwork;
using ndsnn::runtime::CompileOptions;
using ndsnn::tensor::Rng;
using ndsnn::tensor::Shape;
using ndsnn::tensor::Tensor;

void mask_network(ndsnn::nn::SpikingNetwork& net, double sparsity, uint64_t seed) {
  Rng rng(seed);
  for (const auto& p : net.params()) {
    if (!p.prunable) continue;
    const auto active = static_cast<int64_t>(
        static_cast<double>(p.value->numel()) * (1.0 - sparsity));
    const ndsnn::sparse::Mask mask(p.value->shape(), active, rng);
    mask.apply(*p.value);
  }
}

double time_plan(const CompiledNetwork& plan, const Tensor& batch, int repeats) {
  (void)plan.run(batch);  // warm-up
  const ndsnn::util::Stopwatch sw;
  for (int r = 0; r < repeats; ++r) (void)plan.run(batch);
  return sw.millis() / repeats;
}

double time_interpreted(ndsnn::nn::SpikingNetwork& net, const Tensor& batch, int repeats) {
  (void)net.predict(batch);  // warm-up
  const ndsnn::util::Stopwatch sw;
  for (int r = 0; r < repeats; ++r) (void)net.predict(batch);
  return sw.millis() / repeats;
}

/// Zero random 4x4 blocks of every prunable weight's lowered 2-D form,
/// keeping `keep` of them — the row-block pattern of FPGA SNN
/// accelerators (SyncNN-style), the best case for BCSR.
void block_mask_network(ndsnn::nn::SpikingNetwork& net, double keep, uint64_t seed) {
  Rng rng(seed);
  for (const auto& p : net.params()) {
    if (!p.prunable) continue;
    const int64_t rows = p.value->dim(0);
    const int64_t cols = p.value->numel() / rows;
    float* w = p.value->data();
    for (int64_t rb = 0; rb < rows; rb += 4) {
      for (int64_t cb = 0; cb < cols; cb += 4) {
        if (rng.uniform01() < keep) continue;
        for (int64_t r = rb; r < std::min(rb + 4, rows); ++r) {
          for (int64_t c = cb; c < std::min(cb + 4, cols); ++c) w[r * cols + c] = 0.0F;
        }
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const ndsnn::util::Cli cli(argc, argv);
  const std::string arch = cli.get_string("--arch", "lenet5");
  const int batch_size = cli.get_int("--batch", 8);
  const int timesteps = cli.get_int("--timesteps", 2);
  const int repeats = cli.get_int("--repeats", 5);
  const int threads = cli.get_int("--threads", 4);

  ndsnn::nn::ModelSpec spec;
  spec.timesteps = timesteps;
  if (arch == "vgg16" || arch == "resnet19") spec.width_scale = 0.25;

  Rng rng(123);
  Tensor batch(Shape{batch_size, spec.in_channels, spec.image_size, spec.image_size});
  batch.fill_uniform(rng, 0.0F, 1.0F);

  std::printf("sparse inference runtime: %s, batch=%d, T=%d, single thread\n\n",
              arch.c_str(), batch_size, timesteps);

  // "dense path" = SpikingNetwork::predict, the interpreted dense forward
  // the repo used for every eval before this runtime existed. The
  // compiled-dense column isolates what compilation alone buys (no BPTT
  // bookkeeping); the CSR column adds the sparse weight kernels with
  // dense activations; the +event column lets the activation heuristic
  // (kAuto, planning on the fallback firing-rate estimate — these nets
  // are untrained) route spike-valued inputs through the gather kernels
  // on top. See bench/activation_sparsity for the controlled firing-rate
  // sweep behind the event crossover.
  ndsnn::util::Table table({"sparsity", "plan nnz", "dense path ms", "compiled dense ms",
                            "compiled csr ms", "csr+event ms", "speedup", "samples/s"});
  double speedup_at_95 = 0.0;
  for (const double sparsity : {0.5, 0.8, 0.9, 0.95, 0.99}) {
    const auto net = ndsnn::nn::make_model(arch, spec);
    mask_network(*net, sparsity, 7);

    CompileOptions dense_opts;
    dense_opts.force_dense = true;
    dense_opts.activation_mode = ndsnn::runtime::ActivationMode::kDense;
    const CompiledNetwork dense_plan = CompiledNetwork::compile(*net, dense_opts);
    CompileOptions csr_opts;
    csr_opts.activation_mode = ndsnn::runtime::ActivationMode::kDense;
    const CompiledNetwork sparse_plan = CompiledNetwork::compile(*net, csr_opts);
    const CompiledNetwork event_plan = CompiledNetwork::compile(*net);  // kAuto x kAuto

    const double interp_ms = time_interpreted(*net, batch, repeats);
    const double dense_ms = time_plan(dense_plan, batch, repeats);
    const double sparse_ms = time_plan(sparse_plan, batch, repeats);
    const double event_ms = time_plan(event_plan, batch, repeats);
    const double best_ms = std::min(sparse_ms, event_ms);
    const double speedup = interp_ms / best_ms;
    if (sparsity == 0.95) speedup_at_95 = speedup;
    table.add_row({ndsnn::util::fmt(sparsity, 2), std::to_string(sparse_plan.stored_weights()),
                   ndsnn::util::fmt(interp_ms, 2), ndsnn::util::fmt(dense_ms, 2),
                   ndsnn::util::fmt(sparse_ms, 2), ndsnn::util::fmt(event_ms, 2),
                   ndsnn::util::fmt(speedup, 2) + "x",
                   ndsnn::util::fmt(1e3 * batch_size / best_ms, 0)});
  }
  table.print();
  std::printf("\nspeedup over the dense path at 0.95 sparsity: %.2fx %s\n", speedup_at_95,
              speedup_at_95 >= 2.0 ? "(>= 2x target met)" : "(below 2x target!)");

  // Structured sparsity: the same network projected/masked onto the
  // hardware-friendly patterns of Sec. III-D, executed with the
  // element-wise CSR kernels vs the block-CSR kernels (forced backends,
  // so the comparison isolates the kernel and not the heuristic).
  std::printf("\nstructured patterns, CSR vs BCSR kernels (4x4 blocks):\n");
  ndsnn::util::Table structured(
      {"pattern", "sparsity", "csr ms", "bcsr ms", "bcsr speedup", "bcsr samples/s"});
  for (const std::string pattern : {"2:4", "1:4", "blk4x4"}) {
    const auto net = ndsnn::nn::make_model(arch, spec);
    double sparsity = 0.0;
    if (pattern == "blk4x4") {
      block_mask_network(*net, /*keep=*/0.25, 7);
    } else {
      const auto report =
          ndsnn::core::project_network_nm(*net, ndsnn::sparse::parse_nm(pattern));
      sparsity = ndsnn::sparse::nm_sparsity(ndsnn::sparse::parse_nm(pattern));
      (void)report;
    }

    // Dense activations on both plans: the comparison isolates the
    // weight kernel, not the activation heuristic.
    ndsnn::runtime::CompileOptions csr_opts;
    csr_opts.backend = ndsnn::runtime::Backend::kCsr;
    csr_opts.activation_mode = ndsnn::runtime::ActivationMode::kDense;
    ndsnn::runtime::CompileOptions bcsr_opts;
    bcsr_opts.backend = ndsnn::runtime::Backend::kBcsr;
    bcsr_opts.activation_mode = ndsnn::runtime::ActivationMode::kDense;
    const CompiledNetwork csr_plan = CompiledNetwork::compile(*net, csr_opts);
    const CompiledNetwork bcsr_plan = CompiledNetwork::compile(*net, bcsr_opts);
    if (pattern == "blk4x4") sparsity = csr_plan.overall_sparsity();

    const double csr_ms = time_plan(csr_plan, batch, repeats);
    const double bcsr_ms = time_plan(bcsr_plan, batch, repeats);
    structured.add_row({pattern, ndsnn::util::fmt(sparsity, 2), ndsnn::util::fmt(csr_ms, 2),
                        ndsnn::util::fmt(bcsr_ms, 2),
                        ndsnn::util::fmt(csr_ms / bcsr_ms, 2) + "x",
                        ndsnn::util::fmt(1e3 * batch_size / bcsr_ms, 0)});
  }
  structured.print();

  // Serving throughput: shard independent requests across a worker pool.
  std::printf("\nbatch executor throughput at 0.95 sparsity (%d requests):\n", 4 * threads);
  const auto net = ndsnn::nn::make_model(arch, spec);
  mask_network(*net, 0.95, 7);
  const CompiledNetwork plan = CompiledNetwork::compile(*net);
  const std::vector<Tensor> requests(static_cast<std::size_t>(4 * threads), batch);

  ndsnn::util::Table serve(
      {"threads", "total ms", "requests/s", "samples/s", "p50 ms", "p95 ms", "p99 ms"});
  for (int n = 1; n <= threads; n *= 2) {
    BatchExecutor exec(plan, n);
    const ndsnn::util::Stopwatch sw;
    (void)exec.run_all(requests);
    const double ms = sw.millis();
    const double reqs = static_cast<double>(requests.size());
    const ndsnn::runtime::ExecutorStats stats = exec.stats();
    serve.add_row({std::to_string(n), ndsnn::util::fmt(ms, 1),
                   ndsnn::util::fmt(1e3 * reqs / ms, 1),
                   ndsnn::util::fmt(1e3 * reqs * batch_size / ms, 0),
                   ndsnn::util::fmt(stats.p50_ms, 2), ndsnn::util::fmt(stats.p95_ms, 2),
                   ndsnn::util::fmt(stats.p99_ms, 2)});
  }
  serve.print();
  return 0;
}
