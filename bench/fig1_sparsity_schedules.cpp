// Fig. 1: sparsity-vs-epoch curves of the three sparsification families.
//
//  - train-prune-retrain (ADMM style): dense for the first half, then a
//    jump to the target sparsity;
//  - iterative pruning (LTH): staircase rising from 0 to the target;
//  - NDSNN: starts high (theta_i) and ramps cubically to theta_f.
//
// This bench is analytic (no training): it evaluates the exact schedules
// the trainers implement, over the paper's 300-epoch x-axis, and prints
// one row per sampled epoch so the three curves can be plotted.
#include <cstdio>

#include "core/lth_method.hpp"
#include "sparse/schedule.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using ndsnn::core::LthConfig;
using ndsnn::sparse::SparsityRamp;

double admm_schedule(int64_t epoch, int64_t total, double target) {
  // Dense during the penalty phase (first half), hard prune afterwards.
  return epoch < total / 2 ? 0.0 : target;
}

}  // namespace

int main(int argc, char** argv) {
  const ndsnn::util::Cli cli(argc, argv);
  const int64_t epochs = cli.get_int("--epochs", 300);
  const double target = cli.get_double("--target", 0.95);
  const double theta_i = cli.get_double("--initial", 0.8);

  std::printf("=== Fig. 1: sparsity schedules (target sparsity %.2f) ===\n", target);
  std::printf("paper: train-prune-retrain is dense for ~150 epochs; LTH rises\n");
  std::printf("stepwise; NDSNN stays in the %.2f..%.2f band throughout.\n\n", theta_i, target);

  LthConfig lth;
  lth.final_sparsity = target;
  lth.rounds = 10;
  lth.epochs_per_round = epochs / (lth.rounds + 1);

  // NDSNN ramp in epoch units (delta_t = 1 epoch here).
  SparsityRamp ndsnn(theta_i, target, 0, 1, epochs);
  SparsityRamp ndsnn_linear(theta_i, target, 0, 1, epochs, /*exponent=*/1.0);

  ndsnn::util::Table table(
      {"epoch", "train-prune-retrain", "iterative (LTH)", "NDSNN (cubic)", "NDSNN (linear ablation)"});
  for (int64_t e = 0; e <= epochs; e += epochs / 20) {
    const double lth_s = lth.sparsity_after_round(e / lth.epochs_per_round);
    table.add_row({std::to_string(e), ndsnn::util::fmt(admm_schedule(e, epochs, target)),
                   ndsnn::util::fmt(lth_s), ndsnn::util::fmt(ndsnn.at(e)),
                   ndsnn::util::fmt(ndsnn_linear.at(e))});
  }
  table.print();

  // Mean training density (proportional to training FLOPs) per method --
  // the quantitative content of the grey region in Fig. 1.
  double mean_tpr = 0.0, mean_lth = 0.0, mean_nd = 0.0;
  for (int64_t e = 0; e < epochs; ++e) {
    mean_tpr += 1.0 - admm_schedule(e, epochs, target);
    mean_lth += 1.0 - lth.sparsity_after_round(e / lth.epochs_per_round);
    mean_nd += 1.0 - ndsnn.at(e);
  }
  std::printf("\nmean training density (lower = cheaper):\n");
  std::printf("  train-prune-retrain : %.3f\n", mean_tpr / static_cast<double>(epochs));
  std::printf("  iterative (LTH)     : %.3f\n", mean_lth / static_cast<double>(epochs));
  std::printf("  NDSNN               : %.3f  <- always sparse\n",
              mean_nd / static_cast<double>(epochs));
  return 0;
}
