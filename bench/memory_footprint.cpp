// Sec. III-D: training memory footprint model, evaluated on the real
// parameter counts of the (full-width) paper architectures.
#include <cstdio>
#include <vector>

#include "nn/models/zoo.hpp"
#include "sparse/memory_model.hpp"
#include "util/table.hpp"

int main() {
  std::printf("=== Sec. III-D: memory footprint (1-theta)((1+t)N*b_w + N*b_idx) ===\n\n");

  // Full-width architectures at the paper's resolutions.
  struct Arch {
    const char* name;
    const char* builder;
    int64_t image;
  };
  const std::vector<Arch> archs = {{"VGG-16", "vgg16", 32}, {"ResNet-19", "resnet19", 32},
                                   {"LeNet-5", "lenet5", 32}};

  ndsnn::util::Table table({"arch", "weights N", "sparsity", "T", "footprint (MB)",
                            "vs dense"});
  for (const auto& arch : archs) {
    ndsnn::nn::ModelSpec spec;
    spec.num_classes = 10;
    spec.image_size = arch.image;
    spec.timesteps = 1;  // construction only; footprint model takes t below
    auto net = ndsnn::nn::make_model(arch.builder, spec);
    const int64_t n = net->prunable_weight_count();

    ndsnn::sparse::MemoryModelInput dense_in;
    dense_in.total_weights = n;
    dense_in.sparsity = 0.0;
    dense_in.timesteps = 5;
    const double dense_mb = ndsnn::sparse::footprint_mbytes_approx(dense_in);

    for (const double theta : {0.0, 0.90, 0.95, 0.98, 0.99}) {
      ndsnn::sparse::MemoryModelInput in = dense_in;
      in.sparsity = theta;
      const double mb = ndsnn::sparse::footprint_mbytes_approx(in);
      table.add_row({arch.name, std::to_string(n), ndsnn::util::fmt(theta, 2), "5",
                     ndsnn::util::fmt(mb, 1),
                     ndsnn::util::fmt(100.0 * mb / dense_mb, 1) + "%"});
    }
  }
  table.print();

  std::printf("\ntimestep sensitivity (VGG-16 @ 95%% sparsity):\n");
  ndsnn::nn::ModelSpec spec;
  spec.num_classes = 10;
  spec.image_size = 32;
  auto vgg = ndsnn::nn::make_vgg16(spec);
  ndsnn::util::Table ttab({"T", "footprint (MB)"});
  for (const int64_t t : {1, 2, 4, 5, 8, 16}) {
    ndsnn::sparse::MemoryModelInput in;
    in.total_weights = vgg->prunable_weight_count();
    in.sparsity = 0.95;
    in.timesteps = t;
    ttab.add_row({std::to_string(t),
                  ndsnn::util::fmt(ndsnn::sparse::footprint_mbytes_approx(in), 1)});
  }
  ttab.print();
  return 0;
}
