// Fig. 5: normalized training cost of Dense / LTH / NDSNN.
//
// cost_i = (spike_rate_sparse_i * density_i) / spike_rate_dense_i, epoch
// mean, in percent of the dense run (Sec. IV-C). Paper reference points:
// NDSNN VGG-16 CIFAR-10 = 10.5% of dense and 31.35% of LTH; ResNet-19 =
// 40.89% of LTH.
#include <cstdio>
#include <vector>

#include "core/experiment.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  ndsnn::util::set_log_level(ndsnn::util::LogLevel::kWarn);
  const ndsnn::util::Cli cli(argc, argv);
  const bool full = cli.has_flag("--full");
  const int64_t epochs = cli.get_int("--epochs", 12);
  const int64_t samples = cli.get_int("--samples", full ? 768 : 384);
  const double sparsity = cli.get_double("--sparsity", 0.95);

  std::printf("=== Fig. 5: normalized training cost (sparsity %.2f) ===\n", sparsity);
  std::printf("paper: NDSNN = 10.5%% of dense (VGG-16/CIFAR-10); NDSNN/LTH = 31.35%%\n");
  std::printf("(VGG-16) and 40.89%% (ResNet-19).\n\n");

  ndsnn::util::Table table({"arch", "dataset", "Dense %", "LTH %", "NDSNN %", "NDSNN/LTH %"});
  const std::vector<std::pair<const char*, const char*>> combos = {
      {"lenet5", "cifar10"},
      {"lenet5", "cifar100"},
  };
  for (const auto& [arch, dataset] : combos) {
    ndsnn::core::ExperimentConfig base;
    base.arch = arch;
    base.dataset = dataset;
    base.sparsity = sparsity;
    base.epochs = epochs;
    base.train_samples = samples;
    base.test_samples = samples / 2;
    base.model_scale = 2.0;
    base.data_scale = 0.5;
    base.timesteps = 2;
    base.learning_rate = 0.2;

    auto dense_cfg = base;
    dense_cfg.method = "dense";
    auto lth_cfg = base;
    lth_cfg.method = "lth";
    auto ndsnn_cfg = base;
    ndsnn_cfg.method = "ndsnn";

    const auto dense = ndsnn::core::run_experiment(dense_cfg);
    const auto lth = ndsnn::core::run_experiment(lth_cfg);
    const auto ndsnn_run = ndsnn::core::run_experiment(ndsnn_cfg);

    const double lth_cost = ndsnn::core::normalized_training_cost_pct(lth, dense);
    const double nd_cost = ndsnn::core::normalized_training_cost_pct(ndsnn_run, dense);
    table.add_row({arch, dataset, "100.00", ndsnn::util::fmt(lth_cost),
                   ndsnn::util::fmt(nd_cost),
                   ndsnn::util::fmt(lth_cost > 0 ? 100.0 * nd_cost / lth_cost : 0.0)});
  }
  table.print();
  return 0;
}
