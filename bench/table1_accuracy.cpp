// Table I: test accuracy of {LTH, SET, RigL, NDSNN} at sparsity
// {90, 95, 98, 99}% on the synthetic stand-ins, plus the dense baseline.
//
// Scaled-down regime (CPU): width-scaled models, reduced resolution and
// sample counts. Absolute accuracies differ from the paper (different
// data); what must reproduce is the ORDERING -- NDSNN >= RigL/SET >= LTH,
// with the gap widening at 98-99% sparsity.
//
// Flags: --arch lenet5|vgg16|resnet19 --datasets cifar10[,cifar100,...]
//        --epochs N --samples N --full (paper-size sweep, slow)
#include <cstdio>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

namespace {

using ndsnn::core::ExperimentConfig;
using ndsnn::core::run_experiment;
using ndsnn::core::TrainResult;

struct PaperRef {
  const char* method;
  double acc[4];  // 90 / 95 / 98 / 99
};

// Paper Table I, VGG-16 CIFAR-10 block (reference shapes).
constexpr PaperRef kPaperVgg16Cifar10[] = {
    {"LTH-SNN", {89.77, 89.97, 88.97, 88.07}},
    {"SET-SNN", {91.22, 90.41, 87.26, 83.40}},
    {"RigL-SNN", {91.64, 90.06, 87.30, 84.08}},
    {"NDSNN", {91.84, 91.31, 89.62, 88.13}},
};

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  ndsnn::util::set_log_level(ndsnn::util::LogLevel::kWarn);
  const ndsnn::util::Cli cli(argc, argv);
  const bool full = cli.has_flag("--full");
  const std::string arch = cli.get_string("--arch", full ? "vgg16" : "lenet5");
  const auto datasets = split_csv(cli.get_string("--datasets", "cifar10"));
  const int64_t epochs = cli.get_int("--epochs", 12);
  const int64_t samples = cli.get_int("--samples", full ? 768 : 384);

  const std::vector<double> sparsities = {0.90, 0.95, 0.98, 0.99};
  std::vector<std::string> methods = {"lth", "set", "rigl", "ndsnn"};
  // --extended adds the GMP and SNIP baselines (beyond the paper's set).
  if (cli.has_flag("--extended")) {
    methods.insert(methods.begin(), {"gmp", "snip"});
  }

  std::printf("=== Table I: sparse SNN accuracy (synthetic stand-ins, %s) ===\n",
              arch.c_str());
  std::printf("paper reference (VGG-16 / CIFAR-10): rows below for shape comparison\n");
  {
    ndsnn::util::Table ref({"method", "90%", "95%", "98%", "99%"});
    for (const auto& p : kPaperVgg16Cifar10) {
      ref.add_row({p.method, ndsnn::util::fmt(p.acc[0]), ndsnn::util::fmt(p.acc[1]),
                   ndsnn::util::fmt(p.acc[2]), ndsnn::util::fmt(p.acc[3])});
    }
    ref.print();
  }

  for (const auto& dataset : datasets) {
    ExperimentConfig base;
    base.arch = arch;
    base.dataset = dataset;
    base.epochs = epochs;
    base.train_samples = samples;
    base.test_samples = samples / 2;
    base.model_scale = arch == "lenet5" ? 2.0 : 0.1;
    base.data_scale = 0.5;
    base.timesteps = full ? 5 : 2;
    base.learning_rate = 0.2;

    auto dense_cfg = base;
    dense_cfg.method = "dense";
    const TrainResult dense = run_experiment(dense_cfg);
    std::printf("\n--- dataset %s : dense baseline accuracy %.2f%% ---\n", dataset.c_str(),
                dense.best_test_acc);

    ndsnn::util::Table table({"method", "90%", "95%", "98%", "99%"});
    std::map<std::string, std::vector<double>> results;
    for (const auto& method : methods) {
      std::vector<std::string> row = {method};
      for (const double sparsity : sparsities) {
        auto cfg = base;
        cfg.method = method;
        cfg.sparsity = sparsity;
        const TrainResult r = run_experiment(cfg);
        results[method].push_back(r.best_acc_at_final_sparsity);
        row.push_back(ndsnn::util::fmt(r.best_acc_at_final_sparsity));
      }
      table.add_row(std::move(row));
    }
    table.print();

    // Shape check: NDSNN vs best baseline at the two extreme sparsities.
    const double nd99 = results["ndsnn"].back();
    double best_base99 = 0.0;
    for (const auto& m : {"lth", "set", "rigl"}) best_base99 = std::max(best_base99, results[m].back());
    std::printf("shape: NDSNN @99%% = %.2f vs best baseline %.2f (paper: NDSNN wins)\n",
                nd99, best_base99);
  }
  return 0;
}
