// Event-driven vs dense-activation execution across firing rate x
// weight sparsity: where does gathering only the active spikes beat
// streaming the whole activation through the CSR kernels?
//
// Section 1 sweeps the linear kernels on a lenet5-scale layer (fc1,
// [120 x 400] by default): dense-activation Csr::spmm_t vs per-row
// nonzero scan + Csr::spmv_gather on Wᵀ — the exact code path
// runtime::LinearOp runs in each mode. Every cell is verified bitwise
// before timing. Section 2 compiles a masked LeNet-5 end to end under
// the three activation modes. The crossover reported by section 1
// calibrates CompileOptions::event_max_rate; the acceptance bar is
// >= 2x at a 10% firing rate.
//
//   ./bench/activation_sparsity [--rows 256] [--out 120] [--in 400]
//                               [--repeats 30] [--batch 8] [--timesteps 2]
//                               [--json out.json]
//
// --json writes both sections as one machine-readable document; CI
// uploads it as a workflow artifact alongside the sparse_inference
// JSON.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "nn/models/zoo.hpp"
#include "runtime/compiled_network.hpp"
#include "runtime/trace.hpp"
#include "sparse/csr.hpp"
#include "sparse/mask.hpp"
#include "tensor/random.hpp"
#include "tensor/tensor.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

using ndsnn::sparse::Csr;
using ndsnn::tensor::Rng;
using ndsnn::tensor::Shape;
using ndsnn::tensor::Tensor;

Tensor random_masked_weights(int64_t out, int64_t in, double sparsity, Rng& rng) {
  Tensor w(Shape{out, in});
  w.fill_uniform(rng, -0.5F, 0.5F);
  for (int64_t i = 0; i < w.numel(); ++i) {
    if (rng.uniform01() < sparsity) w.at(i) = 0.0F;
  }
  return w;
}

/// Spike-train-like input: each element is 1 with probability `rate`.
Tensor spike_input(int64_t rows, int64_t in, double rate, Rng& rng) {
  Tensor x(Shape{rows, in});
  for (int64_t i = 0; i < x.numel(); ++i) {
    if (rng.uniform01() < rate) x.at(i) = 1.0F;
  }
  return x;
}

/// The event path of runtime::LinearOp without a SpikeBatch view: scan
/// each row for nonzeros, gather through Wᵀ into double accumulators.
Tensor event_spmm_t(const Csr& csr_t, const Tensor& x) {
  const int64_t m = x.dim(0), in = x.dim(1), out = csr_t.cols();
  Tensor y(Shape{m, out});
  std::vector<int32_t> active;
  active.reserve(static_cast<std::size_t>(in));
  std::vector<double> acc(static_cast<std::size_t>(out));
  const float* xp = x.data();
  float* yp = y.data();
  for (int64_t i = 0; i < m; ++i) {
    const float* xrow = xp + i * in;
    active.clear();
    for (int64_t j = 0; j < in; ++j) {
      if (xrow[j] != 0.0F) active.push_back(static_cast<int32_t>(j));
    }
    std::fill(acc.begin(), acc.end(), 0.0);
    csr_t.spmv_gather(xrow, active.data(), static_cast<int64_t>(active.size()), acc.data());
    float* yrow = yp + i * out;
    for (int64_t r = 0; r < out; ++r) yrow[r] = static_cast<float>(acc[static_cast<std::size_t>(r)]);
  }
  return y;
}

template <typename Fn>
double time_ms(const Fn& fn, int repeats) {
  (void)fn();  // warm-up
  const ndsnn::util::Stopwatch sw;
  for (int r = 0; r < repeats; ++r) (void)fn();
  return sw.millis() / repeats;
}

}  // namespace

int main(int argc, char** argv) {
  const ndsnn::util::Cli cli(argc, argv);
  const int64_t rows = cli.get_int("--rows", 256);
  const int64_t out = cli.get_int("--out", 120);
  const int64_t in = cli.get_int("--in", 400);
  const int repeats = cli.get_int("--repeats", 30);
  const int batch_size = cli.get_int("--batch", 8);
  const int timesteps = cli.get_int("--timesteps", 2);
  const std::string json_path = cli.get_string("--json", "");

  std::printf(
      "event-driven vs dense-activation kernels: W [%lld x %lld], input [%lld rows]\n\n",
      static_cast<long long>(out), static_cast<long long>(in),
      static_cast<long long>(rows));

  Rng rng(42);
  ndsnn::util::JsonWriter json;
  json.begin_object();
  json.kv("bench", "activation_sparsity");
  json.kv("rows", static_cast<int64_t>(rows));
  json.kv("out", static_cast<int64_t>(out));
  json.kv("in", static_cast<int64_t>(in));
  json.kv("repeats", repeats);
  json.key("kernel_sweep").begin_array();
  ndsnn::util::Table table({"weight sparsity", "firing rate", "csr spmm_t ms", "event ms",
                            "event speedup"});
  double speedup_at_10pct = 0.0;
  double crossover_rate = 0.0;
  bool crossover_chain = false;
  for (const double ws : {0.8, 0.9, 0.95}) {
    const Tensor w = random_masked_weights(out, in, ws, rng);
    const Csr csr = Csr::from_dense(w);
    const Csr csr_t = csr.transposed();
    if (ws == 0.9) crossover_chain = true;  // rates ascend within this sweep
    for (const double rate : {0.01, 0.05, 0.10, 0.20, 0.30, 0.50, 1.0}) {
      const Tensor x = spike_input(rows, in, rate, rng);

      // Bitwise check before timing: the event path must reproduce the
      // dense-activation product exactly.
      const Tensor want = csr.spmm_t(x);
      const Tensor got = event_spmm_t(csr_t, x);
      for (int64_t i = 0; i < want.numel(); ++i) {
        if (got.at(i) != want.at(i)) {
          std::fprintf(stderr, "BITWISE MISMATCH at ws=%.2f rate=%.2f flat=%lld\n", ws,
                       rate, static_cast<long long>(i));
          return 1;
        }
      }

      const double dense_ms = time_ms([&] { return csr.spmm_t(x); }, repeats);
      const double event_ms = time_ms([&] { return event_spmm_t(csr_t, x); }, repeats);
      const double speedup = dense_ms / event_ms;
      if (ws == 0.9 && rate == 0.10) speedup_at_10pct = speedup;
      // Crossover: the largest rate up to which the event path has won
      // at every step so far (rates ascend; ignore wins past a loss —
      // at full firing the nonzero scan turns into a trivially
      // predictable pass and can flatter the event path again).
      if (ws == 0.9 && crossover_chain) {
        if (speedup >= 1.0) {
          crossover_rate = rate;
        } else {
          crossover_chain = false;
        }
      }
      table.add_row({ndsnn::util::fmt(ws, 2), ndsnn::util::fmt(rate, 2),
                     ndsnn::util::fmt(dense_ms, 3), ndsnn::util::fmt(event_ms, 3),
                     ndsnn::util::fmt(speedup, 2) + "x"});
      json.begin_object();
      json.kv("weight_sparsity", ws);
      json.kv("firing_rate", rate);
      json.kv("csr_spmm_t_ms", dense_ms);
      json.kv("event_ms", event_ms);
      json.kv("event_speedup", speedup);
      json.end_object();
    }
  }
  json.end_array();
  table.print();
  std::printf(
      "\nevent speedup at 0.9 weight sparsity, 10%% firing: %.2fx %s\n"
      "dense/event crossover at 0.9 weight sparsity: ~%.2f firing rate "
      "(CompileOptions::event_max_rate default 0.25)\n",
      speedup_at_10pct, speedup_at_10pct >= 2.0 ? "(>= 2x target met)" : "(below 2x target!)",
      crossover_rate);
  json.kv("event_speedup_at_10pct", speedup_at_10pct);
  json.kv("crossover_rate", crossover_rate);

  // End-to-end: one masked LeNet-5 under the three activation modes.
  // The first conv always stays dense-activation under kAuto (analog
  // input); everything behind a LIF goes event when the rate estimate
  // clears the bar.
  std::printf("\nlenet5 end to end (0.9 sparsity, batch %d, T=%d):\n", batch_size,
              timesteps);
  ndsnn::nn::ModelSpec spec;
  spec.in_channels = 1;
  spec.image_size = 16;
  spec.timesteps = timesteps;
  const auto net = ndsnn::nn::make_lenet5(spec);
  {
    Rng mask_rng(7);
    for (const auto& p : net->params()) {
      if (!p.prunable) continue;
      const auto active =
          static_cast<int64_t>(static_cast<double>(p.value->numel()) * 0.1);
      const ndsnn::sparse::Mask mask(p.value->shape(), active, mask_rng);
      mask.apply(*p.value);
    }
  }
  Tensor batch(Shape{batch_size, 1, 16, 16});
  batch.fill_uniform(rng, 0.0F, 1.0F);

  ndsnn::util::Table net_table(
      {"activation mode", "ms/batch", "samples/s", "est. rate", "obs. rate"});
  json.key("end_to_end").begin_array();
  for (const auto mode : {ndsnn::runtime::ActivationMode::kDense,
                          ndsnn::runtime::ActivationMode::kAuto,
                          ndsnn::runtime::ActivationMode::kEvent}) {
    ndsnn::runtime::CompileOptions opts;
    opts.activation_mode = mode;
    const auto plan = ndsnn::runtime::CompiledNetwork::compile(*net, opts);
    const double ms = time_ms([&] { return plan.run(batch); }, repeats);
    // Observed firing rate via the PlanProfile hooks (one profiled run
    // outside the timed loop): mean over the ops that saw a rate — the
    // measured counterpart of the compile-time fallback estimate.
    plan.enable_profiling(true);
    (void)plan.run(batch);
    plan.enable_profiling(false);
    double rate_sum = 0.0;
    int rated_ops = 0;
    for (const auto& op : plan.profile()) {
      if (op.ema_rate >= 0.0) {
        rate_sum += op.ema_rate;
        ++rated_ops;
      }
    }
    const double observed_rate = rated_ops > 0 ? rate_sum / rated_ops : -1.0;
    const char* name = mode == ndsnn::runtime::ActivationMode::kDense  ? "dense"
                       : mode == ndsnn::runtime::ActivationMode::kAuto ? "auto"
                                                                       : "event (forced)";
    net_table.add_row({name, ndsnn::util::fmt(ms, 2),
                       ndsnn::util::fmt(1e3 * batch_size / ms, 0),
                       ndsnn::util::fmt(plan.estimated_spike_rate(), 2),
                       observed_rate < 0.0 ? "-" : ndsnn::util::fmt(observed_rate, 2)});
    json.begin_object();
    json.kv("activation_mode", name);
    json.kv("ms", ms);
    json.kv("samples_per_s", 1e3 * batch_size / ms);
    json.kv("estimated_rate", plan.estimated_spike_rate());
    json.kv("observed_rate", observed_rate);
    json.end_object();
  }
  json.end_array();
  net_table.print();
  json.end_object();
  if (!json_path.empty()) {
    json.write_file(json_path);
    std::printf("\nwrote bench JSON to %s\n", json_path.c_str());
  }
  return 0;
}
