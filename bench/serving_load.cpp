// Serving load bench: open-loop Poisson arrivals against the
// SLO-aware BatchExecutor — the regression gate for the queueing layer.
//
//   ./bench/serving_load [--threads 4] [--requests 150] [--slo-ms 0]
//                        [--seed 42] [--json out.json]
//
// Two sweeps, both on a small masked LeNet plan (this bench measures
// scheduling, not kernels; single-sample requests are the serving
// worst case):
//
//   1. fixed_load — the same offered rate (60% of one worker's
//      measured saturation throughput, so even one worker can keep up)
//      replayed against 1, 2 and 4 request workers with coalescing on.
//      On a healthy scheduler, p50 stays flat or falls as workers are
//      added; the pre-PR-7 pop-and-hold FIFO *inverted* this curve
//      (BENCH_sparse_inference.json: p50 3.3 ms -> 14.1 ms from 1 to 4
//      workers). tools/check_bench_regression.py gates
//      p50@4w <= 1.5 x p50@1w on multi-core runners.
//
//   2. slo_sweep — offered load at 0.5x / 0.8x / 1.5x of the full
//      pool's saturation with an SLO budget set (--slo-ms, default
//      8 x calibrated service time): below saturation admission control
//      should shed ~nothing and admitted p99 should hold the budget;
//      past saturation it must shed instead of letting every request
//      time out.
//
// The JSON carries `cores` so the checker only enforces thread-scaling
// gates where they mean something (a 1-core container cannot speed up
// with workers).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "nn/models/zoo.hpp"
#include "runtime/batch_executor.hpp"
#include "runtime/compiled_network.hpp"
#include "serve/loadgen.hpp"
#include "sparse/mask.hpp"
#include "tensor/random.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

using ndsnn::runtime::BatchExecutor;
using ndsnn::runtime::CompiledNetwork;
using ndsnn::runtime::ExecutorOptions;
using ndsnn::serve::LoadgenOptions;
using ndsnn::serve::LoadgenResult;
using ndsnn::tensor::Rng;
using ndsnn::tensor::Shape;
using ndsnn::tensor::Tensor;

CompiledNetwork make_plan(uint64_t seed) {
  ndsnn::nn::ModelSpec spec;
  spec.in_channels = 1;
  spec.image_size = 16;
  spec.timesteps = 2;
  spec.seed = seed;
  const auto net = ndsnn::nn::make_lenet5(spec);
  Rng rng(seed + 1);
  for (const auto& p : net->params()) {
    if (!p.prunable) continue;
    const auto active = static_cast<int64_t>(static_cast<double>(p.value->numel()) * 0.05);
    const ndsnn::sparse::Mask mask(p.value->shape(), active, rng);
    mask.apply(*p.value);
  }
  return CompiledNetwork::compile(*net);
}

void emit_point(ndsnn::util::JsonWriter& json, const LoadgenResult& r, int workers,
                double load_factor = 0.0, double slo_ms = 0.0) {
  json.begin_object();
  json.kv("workers", workers);
  if (load_factor > 0.0) json.kv("load_factor", load_factor);
  if (slo_ms > 0.0) json.kv("slo_ms", slo_ms);
  json.kv("offered_rps", r.offered_rps);
  json.kv("achieved_rps", r.achieved_rps);
  json.kv("offered", r.offered);
  json.kv("completed", r.completed);
  json.kv("shed", r.shed);
  if (r.failed > 0) json.kv("failed", r.failed);
  json.kv("shed_rate", r.shed_rate);
  json.kv("slo_violations", r.slo_violations);
  json.kv("violation_rate", r.violation_rate);
  json.kv("e2e_p50_ms", r.e2e_p50_ms);
  json.kv("e2e_p95_ms", r.e2e_p95_ms);
  json.kv("e2e_p99_ms", r.e2e_p99_ms);
  json.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  const ndsnn::util::Cli cli(argc, argv);
  const int threads = cli.get_int("--threads", 4);
  const int requests = cli.get_int("--requests", 150);
  const double slo_override = cli.get_double("--slo-ms", 0.0);
  const auto seed = static_cast<uint64_t>(cli.get_int("--seed", 42));
  const std::string json_path = cli.get_string("--json", "");

  const CompiledNetwork plan = make_plan(seed);
  Rng rng(seed + 17);
  // 8 rows per request: pushes per-request service time to a fraction
  // of a millisecond even on a small plan, so offered-rate pacing and
  // SLO budgets sit well above OS timer jitter. (Sub-0.1 ms requests
  // made the whole bench resolution-bound.)
  Tensor sample(Shape{8, 1, 16, 16});
  sample.fill_uniform(rng, 0.0F, 1.0F);

  // Calibrate per-request service time on a warm single worker; every
  // offered rate below is expressed against this measurement so the
  // bench self-scales to whatever box it runs on.
  double service_ms = 0.0;
  {
    BatchExecutor warm(plan, 1);
    for (int i = 0; i < 4; ++i) (void)warm.submit(sample).get();
    const ndsnn::util::Stopwatch sw;
    constexpr int kCalib = 20;
    for (int i = 0; i < kCalib; ++i) (void)warm.submit(sample).get();
    service_ms = sw.millis() / kCalib;
  }
  const double sat_rps_1w = 1000.0 / service_ms;  // one worker's ceiling
  const double slo_ms = slo_override > 0.0 ? slo_override : 8.0 * service_ms;
  const auto cores = static_cast<int64_t>(std::thread::hardware_concurrency());

  std::printf("serving load bench: service %.2f ms/request, 1-worker saturation %.0f rps, "
              "slo %.1f ms, %lld cores\n",
              service_ms, sat_rps_1w, slo_ms, static_cast<long long>(cores));

  ndsnn::util::JsonWriter json;
  json.begin_object();
  json.kv("bench", "serving_load");
  json.kv("cores", cores);
  json.kv("threads", threads);
  json.kv("requests", requests);
  json.kv("service_ms", service_ms);
  json.kv("sat_rps_1w", sat_rps_1w);
  json.kv("slo_ms", slo_ms);
  json.key("serving").begin_object();

  // --- Sweep 1: fixed offered load, worker count 1 -> threads. ---
  const double fixed_rps = 0.6 * sat_rps_1w;
  std::printf("\nfixed offered load %.0f rps (0.6 x 1-worker saturation):\n", fixed_rps);
  ndsnn::util::Table fixed({"workers", "offered rps", "achieved", "p50 ms", "p95 ms",
                            "p99 ms"});
  json.key("fixed_load").begin_array();
  double p50_1w = 0.0, p50_max_w = 0.0;
  for (int w = 1; w <= threads; w *= 2) {
    ExecutorOptions eopts;
    eopts.max_coalesce = 32;  // exercise the hold-open path the old
    eopts.max_wait_us = 200;  // scheduler head-of-line blocked on
    BatchExecutor exec(plan, w, eopts);
    (void)exec.submit(sample).get();  // warm this pool
    LoadgenOptions lopts;
    lopts.offered_rps = fixed_rps;
    lopts.requests = requests;
    lopts.seed = seed;
    const LoadgenResult r = ndsnn::serve::run_open_loop(exec, sample, lopts);
    if (w == 1) p50_1w = r.e2e_p50_ms;
    p50_max_w = r.e2e_p50_ms;
    fixed.add_row({std::to_string(w), ndsnn::util::fmt(r.offered_rps, 0),
                   ndsnn::util::fmt(r.achieved_rps, 0), ndsnn::util::fmt(r.e2e_p50_ms, 2),
                   ndsnn::util::fmt(r.e2e_p95_ms, 2), ndsnn::util::fmt(r.e2e_p99_ms, 2)});
    emit_point(json, r, w);
  }
  json.end_array();
  fixed.print();
  const double scaling = p50_1w > 0.0 ? p50_max_w / p50_1w : 0.0;
  std::printf("p50 at %d workers / p50 at 1 worker: %.2fx %s\n", threads, scaling,
              cores >= 4 ? (scaling <= 1.5 ? "(<= 1.5x gate met)" : "(gate FAILED)")
                         : "(informational: < 4 cores)");
  json.kv("p50_scaling", scaling);

  // --- Sweep 2: SLO + admission control across the saturation knee. ---
  const double sat_rps_pool = sat_rps_1w * std::max(1, std::min(threads, static_cast<int>(cores)));
  std::printf("\nSLO sweep at %.1f ms budget (pool saturation ~%.0f rps):\n", slo_ms,
              sat_rps_pool);
  ndsnn::util::Table slo_table({"load", "offered rps", "p99 ms", "shed rate",
                                "violation rate"});
  json.key("slo_sweep").begin_array();
  for (const double factor : {0.5, 0.8, 1.5}) {
    ExecutorOptions eopts;
    eopts.max_coalesce = 32;
    eopts.max_wait_us = 200;
    eopts.slo_ms = slo_ms;
    BatchExecutor exec(plan, threads, eopts);
    (void)exec.submit(sample).get();
    LoadgenOptions lopts;
    lopts.offered_rps = factor * sat_rps_pool;
    lopts.requests = requests;
    lopts.seed = seed + static_cast<uint64_t>(factor * 100);
    const LoadgenResult r = ndsnn::serve::run_open_loop(exec, sample, lopts);
    slo_table.add_row({ndsnn::util::fmt(factor, 1) + "x",
                       ndsnn::util::fmt(r.offered_rps, 0),
                       ndsnn::util::fmt(r.e2e_p99_ms, 2), ndsnn::util::fmt(r.shed_rate, 3),
                       ndsnn::util::fmt(r.violation_rate, 3)});
    emit_point(json, r, threads, factor, slo_ms);
  }
  json.end_array();
  slo_table.print();

  json.end_object();  // serving
  json.end_object();
  if (!json_path.empty()) {
    json.write_file(json_path);
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return 0;
}
