// google-benchmark microbenchmarks of the computational kernels: GEMM,
// im2col, LIF step, surrogate gradient, drop/grow selection, CSR matvec,
// and the CSR-vs-BCSR spmm/spmm_t comparison at the structured-sparsity
// patterns the runtime targets (2:4, 1:4, 4x4 blocks). These quantify
// where the training loop and the inference runtime spend their time.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "snn/lif.hpp"
#include "sparse/bcsr.hpp"
#include "sparse/csr.hpp"
#include "sparse/structured.hpp"
#include "sparse/topk.hpp"
#include "tensor/im2col.hpp"
#include "tensor/matmul.hpp"
#include "tensor/random.hpp"
#include "util/cpuinfo.hpp"

namespace {

namespace simd = ndsnn::util::simd;
using ndsnn::tensor::ConvGeometry;
using ndsnn::tensor::Rng;
using ndsnn::tensor::Shape;
using ndsnn::tensor::Tensor;

/// Noise discipline for a shared/1-core box: every benchmark runs 3
/// repetitions and reports aggregates only, including an explicit `min`
/// statistic — the least noise-sensitive location estimate, and the one
/// the snapshot comparisons should read. Bodies additionally run their
/// kernel once before the timed loop (google-benchmark's first timed
/// iteration otherwise pays the cold-cache cost into the mean).
void MinOfRepeats(benchmark::internal::Benchmark* b) {
  b->Repetitions(3)->ReportAggregatesOnly(true)->ComputeStatistics(
      "min",
      [](const std::vector<double>& v) { return *std::min_element(v.begin(), v.end()); });
}

void BM_Matmul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a(Shape{n, n}), b(Shape{n, n});
  a.fill_uniform(rng, -1.0F, 1.0F);
  b.fill_uniform(rng, -1.0F, 1.0F);
  (void)ndsnn::tensor::matmul(a, b);  // warm-up
  for (auto _ : state) {
    Tensor c = ndsnn::tensor::matmul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Matmul)->Apply(MinOfRepeats)->Arg(64)->Arg(128)->Arg(256);

void BM_MatmulSparseA(benchmark::State& state) {
  // The zero-skip path used by pruned weight matrices.
  const int64_t n = 128;
  const double density = static_cast<double>(state.range(0)) / 100.0;
  Rng rng(2);
  Tensor a(Shape{n, n}), b(Shape{n, n});
  b.fill_uniform(rng, -1.0F, 1.0F);
  for (int64_t i = 0; i < a.numel(); ++i) {
    a.at(i) = rng.bernoulli(density) ? rng.uniform(-1.0F, 1.0F) : 0.0F;
  }
  (void)ndsnn::tensor::matmul(a, b);  // warm-up
  for (auto _ : state) {
    Tensor c = ndsnn::tensor::matmul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_MatmulSparseA)->Apply(MinOfRepeats)->Arg(100)->Arg(20)->Arg(5)->Arg(1);

void BM_Im2col(benchmark::State& state) {
  ConvGeometry g;
  g.batch = 8;
  g.in_channels = 16;
  g.in_h = g.in_w = 32;
  g.kernel_h = g.kernel_w = 3;
  g.stride = 1;
  g.padding = 1;
  Rng rng(3);
  Tensor x(Shape{8, 16, 32, 32});
  x.fill_uniform(rng, -1.0F, 1.0F);
  (void)ndsnn::tensor::im2col(x, g);  // warm-up
  for (auto _ : state) {
    Tensor cols = ndsnn::tensor::im2col(x, g);
    benchmark::DoNotOptimize(cols.data());
  }
}
BENCHMARK(BM_Im2col)->Apply(MinOfRepeats);

void BM_LifForward(benchmark::State& state) {
  const int64_t t = state.range(0);
  ndsnn::snn::LifConfig cfg;
  ndsnn::snn::LifLayer lif(cfg, t);
  Rng rng(4);
  Tensor current(Shape{t * 32, 512});
  current.fill_uniform(rng, 0.0F, 2.0F);
  (void)lif.forward(current);  // warm-up
  for (auto _ : state) {
    Tensor spikes = lif.forward(current);
    benchmark::DoNotOptimize(spikes.data());
  }
  state.SetItemsProcessed(state.iterations() * current.numel());
}
BENCHMARK(BM_LifForward)->Apply(MinOfRepeats)->Arg(2)->Arg(5)->Arg(8);

void BM_LifBackward(benchmark::State& state) {
  const int64_t t = 5;
  ndsnn::snn::LifConfig cfg;
  ndsnn::snn::LifLayer lif(cfg, t);
  Rng rng(5);
  Tensor current(Shape{t * 32, 512});
  current.fill_uniform(rng, 0.0F, 2.0F);
  (void)lif.forward(current);
  Tensor g(current.shape());
  g.fill_uniform(rng, -1.0F, 1.0F);
  (void)lif.backward(g);  // warm-up
  for (auto _ : state) {
    Tensor gin = lif.backward(g);
    benchmark::DoNotOptimize(gin.data());
  }
}
BENCHMARK(BM_LifBackward)->Apply(MinOfRepeats);

void BM_ArgDrop(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(6);
  Tensor w(Shape{n});
  w.fill_uniform(rng, -1.0F, 1.0F);
  std::vector<int64_t> candidates(static_cast<std::size_t>(n));
  for (int64_t i = 0; i < n; ++i) candidates[static_cast<std::size_t>(i)] = i;
  (void)ndsnn::sparse::argdrop_smallest_magnitude(w, candidates, n / 10);  // warm-up
  for (auto _ : state) {
    auto picked = ndsnn::sparse::argdrop_smallest_magnitude(w, candidates, n / 10);
    benchmark::DoNotOptimize(picked.data());
  }
}
BENCHMARK(BM_ArgDrop)->Apply(MinOfRepeats)->Arg(10000)->Arg(100000);

void BM_CsrMatvec(benchmark::State& state) {
  const double density = static_cast<double>(state.range(0)) / 100.0;
  Rng rng(7);
  Tensor dense(Shape{512, 512});
  for (int64_t i = 0; i < dense.numel(); ++i) {
    dense.at(i) = rng.bernoulli(density) ? rng.uniform(-1.0F, 1.0F) : 0.0F;
  }
  const auto csr = ndsnn::sparse::Csr::from_dense(dense);
  std::vector<float> x(512, 1.0F);
  (void)csr.matvec(x);  // warm-up
  for (auto _ : state) {
    auto y = csr.matvec(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_CsrMatvec)->Apply(MinOfRepeats)->Arg(100)->Arg(10)->Arg(2);

// --------------------------------------------------- CSR vs BCSR kernels
//
// A 512x512 weight layer at the structured patterns of Sec. III-D.
// Pattern ids: 0 = 2:4, 1 = 1:4, 2 = random 4x4 block mask (25% of
// blocks kept). The BCSR variants pack 4x4 dense micro-blocks.

Tensor make_pattern_matrix(int64_t pattern_id, uint64_t seed) {
  Rng rng(seed);
  Tensor a(Shape{512, 512});
  a.fill_uniform(rng, -1.0F, 1.0F);
  if (pattern_id == 0) {
    ndsnn::sparse::project_nm(a, {2, 4});
  } else if (pattern_id == 1) {
    ndsnn::sparse::project_nm(a, {1, 4});
  } else {
    for (int64_t rb = 0; rb < 512; rb += 4) {
      for (int64_t cb = 0; cb < 512; cb += 4) {
        if (rng.uniform01() < 0.75) {
          for (int64_t r = 0; r < 4; ++r) {
            for (int64_t c = 0; c < 4; ++c) a.at(rb + r, cb + c) = 0.0F;
          }
        }
      }
    }
  }
  return a;
}

const char* pattern_name(int64_t id) { return id == 0 ? "2:4" : id == 1 ? "1:4" : "blk4x4"; }

/// B has 256 columns, conv-like (im2col L for a small feature map).
constexpr int64_t kSpmmCols = 256;
/// spmm_t batch rows, linear-like (T*N for a serving batch).
constexpr int64_t kSpmmTRows = 64;

void BM_CsrSpmm(benchmark::State& state) {
  const Tensor a = make_pattern_matrix(state.range(0), 21);
  const auto csr = ndsnn::sparse::Csr::from_dense(a);
  Rng rng(22);
  Tensor b(Shape{512, kSpmmCols});
  b.fill_uniform(rng, -1.0F, 1.0F);
  (void)csr.spmm(b);  // warm-up
  for (auto _ : state) {
    Tensor c = csr.spmm(b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetLabel(std::string(pattern_name(state.range(0))) + " nnz=" +
                 std::to_string(csr.nnz()));
  state.SetItemsProcessed(state.iterations() * 2 * csr.nnz() * kSpmmCols);
}
BENCHMARK(BM_CsrSpmm)->Apply(MinOfRepeats)->Arg(0)->Arg(1)->Arg(2);

void BM_BcsrSpmm(benchmark::State& state) {
  const Tensor a = make_pattern_matrix(state.range(0), 21);
  const auto bcsr = ndsnn::sparse::Bcsr::from_dense(a, 4, 4);
  Rng rng(22);
  Tensor b(Shape{512, kSpmmCols});
  b.fill_uniform(rng, -1.0F, 1.0F);
  (void)bcsr.spmm(b);  // warm-up
  for (auto _ : state) {
    Tensor c = bcsr.spmm(b);
    benchmark::DoNotOptimize(c.data());
  }
  char label[96];
  std::snprintf(label, sizeof label, "%s occupancy=%.2f", pattern_name(state.range(0)),
                bcsr.occupancy());
  state.SetLabel(label);
  state.SetItemsProcessed(state.iterations() * 2 * bcsr.nnz() * kSpmmCols);
}
BENCHMARK(BM_BcsrSpmm)->Apply(MinOfRepeats)->Arg(0)->Arg(1)->Arg(2);

void BM_CsrSpmmT(benchmark::State& state) {
  const Tensor a = make_pattern_matrix(state.range(0), 23);
  const auto csr = ndsnn::sparse::Csr::from_dense(a);
  Rng rng(24);
  Tensor b(Shape{kSpmmTRows, 512});
  b.fill_uniform(rng, -1.0F, 1.0F);
  (void)csr.spmm_t(b);  // warm-up
  for (auto _ : state) {
    Tensor c = csr.spmm_t(b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetLabel(pattern_name(state.range(0)));
  state.SetItemsProcessed(state.iterations() * 2 * csr.nnz() * kSpmmTRows);
}
BENCHMARK(BM_CsrSpmmT)->Apply(MinOfRepeats)->Arg(0)->Arg(1)->Arg(2);

void BM_BcsrSpmmT(benchmark::State& state) {
  const Tensor a = make_pattern_matrix(state.range(0), 23);
  const auto bcsr = ndsnn::sparse::Bcsr::from_dense(a, 4, 4);
  Rng rng(24);
  Tensor b(Shape{kSpmmTRows, 512});
  b.fill_uniform(rng, -1.0F, 1.0F);
  (void)bcsr.spmm_t(b);  // warm-up
  for (auto _ : state) {
    Tensor c = bcsr.spmm_t(b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetLabel(pattern_name(state.range(0)));
  state.SetItemsProcessed(state.iterations() * 2 * bcsr.nnz() * kSpmmTRows);
}
BENCHMARK(BM_BcsrSpmmT)->Apply(MinOfRepeats)->Arg(0)->Arg(1)->Arg(2);

// ---------------------------------------------------------- kernel tiers
//
// The fc1-scale layer ([120 x 400] at 0.9 unstructured sparsity, the
// shape the runtime's LinearOp gate targets) through each SIMD tier
// explicitly. Arg: tier id (1 = scalar, 2 = vector, 3 = avx2). Tiers
// above what the box detects are skipped instead of measured — the
// dispatch layer would silently clamp the request and the "avx2" row
// would quietly time the vector kernel.

Tensor make_fc1_matrix(uint64_t seed) {
  Rng rng(seed);
  Tensor a(Shape{120, 400});
  a.fill_uniform(rng, -0.12F, 0.12F);
  for (int64_t i = 0; i < a.numel(); ++i) {
    if (rng.uniform01() < 0.9) a.at(i) = 0.0F;
  }
  return a;
}

void BM_CsrSpmmTTier(benchmark::State& state) {
  const auto tier = static_cast<simd::Tier>(state.range(0));
  if (tier > simd::detected()) {
    state.SkipWithError("tier not available on this box");
    return;
  }
  const Tensor a = make_fc1_matrix(31);
  const auto csr = ndsnn::sparse::Csr::from_dense(a);
  Rng rng(32);
  Tensor b(Shape{256, 400});
  b.fill_uniform(rng, 0.0F, 1.0F);
  (void)csr.spmm_t(b, nullptr, tier);  // warm-up
  for (auto _ : state) {
    Tensor c = csr.spmm_t(b, nullptr, tier);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetLabel(simd::name(tier));
  state.SetItemsProcessed(state.iterations() * 2 * csr.nnz() * 256);
}
BENCHMARK(BM_CsrSpmmTTier)->Apply(MinOfRepeats)->Arg(1)->Arg(2)->Arg(3);

void BM_CsrSpmmTier(benchmark::State& state) {
  const auto tier = static_cast<simd::Tier>(state.range(0));
  if (tier > simd::detected()) {
    state.SkipWithError("tier not available on this box");
    return;
  }
  const Tensor a = make_fc1_matrix(31);
  const auto csr = ndsnn::sparse::Csr::from_dense(a);
  Rng rng(33);
  Tensor b(Shape{400, 256});
  b.fill_uniform(rng, 0.0F, 1.0F);
  (void)csr.spmm(b, nullptr, tier);  // warm-up
  for (auto _ : state) {
    Tensor c = csr.spmm(b, nullptr, tier);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetLabel(simd::name(tier));
  state.SetItemsProcessed(state.iterations() * 2 * csr.nnz() * 256);
}
BENCHMARK(BM_CsrSpmmTier)->Apply(MinOfRepeats)->Arg(1)->Arg(2)->Arg(3);

}  // namespace

BENCHMARK_MAIN();
