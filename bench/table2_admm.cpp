// Table II: ADMM pruning (LeNet-5) vs NDSNN (VGG-16 in the paper; the
// scaled preset here) at moderate sparsities {40, 50, 60, 75}%.
//
// The paper's point: NDSNN holds accuracy at these sparsities (loss
// ~0.00x) while ADMM already degrades noticeably by 75%.
#include <cstdio>
#include <vector>

#include "core/experiment.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  ndsnn::util::set_log_level(ndsnn::util::LogLevel::kWarn);
  const ndsnn::util::Cli cli(argc, argv);
  const bool full = cli.has_flag("--full");
  const int64_t epochs = cli.get_int("--epochs", 10);
  const int64_t samples = cli.get_int("--samples", full ? 512 : 256);

  const std::vector<double> sparsities = {0.40, 0.50, 0.60, 0.75};

  std::printf("=== Table II: ADMM (LeNet-5) vs NDSNN on synthetic CIFAR-10 ===\n");
  std::printf("paper: ADMM acc loss reaches -2.15 at 75%%; NDSNN stays ~0.\n\n");

  ndsnn::core::ExperimentConfig base;
  base.arch = "lenet5";
  base.dataset = "cifar10";
  base.epochs = epochs;
  base.train_samples = samples;
  base.test_samples = samples / 2;
  base.model_scale = 0.75;
  base.data_scale = 0.5;
  base.timesteps = 2;
  base.learning_rate = 0.2;

  auto dense_cfg = base;
  dense_cfg.method = "dense";
  const auto dense = ndsnn::core::run_experiment(dense_cfg);
  std::printf("dense LeNet-5 baseline: %.2f%%\n\n", dense.best_test_acc);

  ndsnn::util::Table table({"method", "40%", "50%", "60%", "75%"});
  ndsnn::util::Table loss_table({"method", "40%", "50%", "60%", "75%"});
  for (const char* method : {"admm", "ndsnn"}) {
    std::vector<std::string> row = {method};
    std::vector<std::string> loss_row = {method};
    for (const double s : sparsities) {
      auto cfg = base;
      cfg.method = method;
      cfg.sparsity = s;
      // Moderate targets: start NDSNN denser for a fair comparison.
      cfg.initial_sparsity = s * 0.5;
      const auto r = ndsnn::core::run_experiment(cfg);
      row.push_back(ndsnn::util::fmt(r.best_acc_at_final_sparsity));
      loss_row.push_back(ndsnn::util::fmt(r.best_acc_at_final_sparsity - dense.best_test_acc));
    }
    table.add_row(std::move(row));
    loss_table.add_row(std::move(loss_row));
  }
  std::printf("accuracy:\n");
  table.print();
  std::printf("\naccuracy delta vs dense (paper: ADMM -2.15 @75%%, NDSNN ~0):\n");
  loss_table.print();
  return 0;
}
